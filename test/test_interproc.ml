(** Interprocedural analysis tests: mapping/unmapping across calls
    (§4.1), invisible variables and symbolic names, recursion fixed
    points (§4.2), context sensitivity, return values, and the examples
    worked in the paper. Queries on globals are made at exit of main;
    queries inside callees use probe calls. *)

open Test_util
module Ig = Pointsto.Invocation_graph

let mapping_tests =
  [
    case "formals inherit the actuals' relationships" (fun () ->
        check_exit "param in"
          {|int v; int *g;
            void callee(int *p) { g = p; }
            int main() { callee(&v); return 0; }|}
          "g" [ "v/D" ]);
    case "globals keep their relationships across calls" (fun () ->
        check_exit "global through"
          {|int v; int *g;
            void noop(void) { int local; local = 1; }
            int main() { g = &v; noop(); return 0; }|}
          "g" [ "v/D" ]);
    case "callee writes through a parameter update the caller local" (fun () ->
        check_exit "write through"
          {|int v;
            void set(int **pp) { *pp = &v; }
            int main() { int *p; set(&p); return 0; }|}
          "p" [ "v/D" ]);
    case "the paper's swap example" (fun () ->
        let src =
          {|int g1, g2;
            void swap(int **x, int **y) { int *tmp; tmp = *x; *x = *y; *y = tmp; }
            int main() { int *p, *q; p = &g1; q = &g2; swap(&p, &q); return 0; }|}
        in
        let res = analyze src in
        check_targets "p" [ "g2/D" ] (exit_targets res "p");
        check_targets "q" [ "g1/D" ] (exit_targets res "q"));
    case "two-level invisible chain through symbolic names" (fun () ->
        check_exit "2_x"
          {|int v;
            void set(int ***ppp) { **ppp = &v; }
            int main() { int *p; int **pp; pp = &p; set(&pp); return 0; }|}
          "p" [ "v/D" ]);
    case "symbolic names appear in the callee's view" (fun () ->
        let src =
          {|int v;
            void probe1(void);
            void cal(int **pp) { probe1(); *pp = &v; }
            int main() { int *p; cal(&p); return 0; }|}
        in
        let res = analyze src in
        check_targets "pp points to 1_pp" [ "1_pp/D" ]
          (probe_targets res ~fname:"cal" "probe1" "pp"));
    case "unreachable caller locals persist across the call" (fun () ->
        check_exit "untouched"
          {|int v, w;
            void other(int *a) { }
            int main() { int *p, *q; p = &v; q = &w; other(q); return 0; }|}
          "p" [ "v/D" ]);
    case "one symbolic name per invisible variable (shared target)" (fun () ->
        (* x and y definitely point to the same invisible b: the callee
           must see a single symbolic location for b so that a write
           through x is seen through y *)
        check_exit "aliased params"
          {|int v; int *res;
            void callee(int **x, int **y) { *x = &v; res = *y; }
            int main() { int *b; callee(&b, &b); return 0; }|}
          "res" [ "v/D" ]);
    case "a symbolic name can represent several invisibles" (fun () ->
        check_exit "merged invisibles"
          {|int v; int c;
            void callee(int **x) { *x = &v; }
            int main() { int *a, *b, **pp;
              if (c) pp = &a; else pp = &b;
              callee(pp);
              return 0; }|}
          "a" [ "v/P" ]);
    case "struct argument passed by value copies its pointer fields" (fun () ->
        check_exit "struct by value"
          {|int v; int *g;
            struct s { int n; int *p; };
            void callee(struct s arg) { g = arg.p; }
            int main() { struct s x; x.p = &v; callee(x); return 0; }|}
          "g" [ "v/D" ]);
    case "callee cannot affect the actual variable itself" (fun () ->
        check_exit "actual copied"
          {|int v, w;
            void callee(int *p) { p = &w; }
            int main() { int *q; q = &v; callee(q); return 0; }|}
          "q" [ "v/D" ]);
    case "escaping callee locals are dropped at unmap" (fun () ->
        check_exit "dangling"
          {|int *g;
            void bad(void) { int local; g = &local; }
            int main() { bad(); return 0; }|}
          "g" []);
    case "heap relationships survive the call boundary" (fun () ->
        check_exit "heap through"
          {|int *g;
            void fill(int **pp) { *pp = (int*)malloc(4); }
            int main() { int *p; fill(&p); return 0; }|}
          "p" [ "heap/P" ]);
  ]

let return_tests =
  [
    case "returned address binds the call result" (fun () ->
        check_exit "return &v"
          {|int v;
            int *get(void) { return &v; }
            int main() { int *p; p = get(); return 0; }|}
          "p" [ "v/D" ]);
    case "returned parameter propagates its targets" (fun () ->
        check_exit "identity function"
          {|int v;
            int *id(int *x) { return x; }
            int main() { int *p; p = id(&v); return 0; }|}
          "p" [ "v/D" ]);
    case "merging returns from two paths" (fun () ->
        check_exit "two returns"
          {|int v, w; int c;
            int *pick(void) { if (c) return &v; return &w; }
            int main() { int *p; p = pick(); return 0; }|}
          "p" [ "v/P"; "w/P" ]);
    case "malloc wrapper returns heap" (fun () ->
        check_exit "xmalloc"
          {|int *xmalloc(int n) { int *p; p = (int*)malloc(n); return p; }
            int main() { int *p; p = xmalloc(4); return 0; }|}
          "p" [ "heap/P" ]);
    case "external call result is conservative" (fun () ->
        (* an external with no library model keeps the coarse transfer *)
        check_exit "external"
          {|char *mystery(char *name);
            int main() { char *p; p = mystery("HOME"); return 0; }|}
          "p" [ "heap/P"; "str/P" ]);
    case "modeled external: getenv returns a new object" (fun () ->
        check_exit "getenv"
          {|char *getenv(char *name);
            int main() { char *p; p = getenv("HOME"); return 0; }|}
          "p" [ "heap/P" ]);
    case "modeled external: strcpy returns its first argument" (fun () ->
        check_exit "strcpy"
          {|char *strcpy(char *dst, char *src);
            int main() { char a; char *d; char *p;
                         d = &a; p = strcpy(d, "x"); return 0; }|}
          "p" [ "a/D" ]);
  ]

let context_tests =
  [
    case "contexts are kept separate (no cross-site pollution)" (fun () ->
        (* identity called with &v and &w: each call site only sees its
           own argument *)
        let src =
          {|int v, w;
            int *id(int *x) { return x; }
            int main() { int *p, *q; p = id(&v); q = id(&w); return 0; }|}
        in
        let res = analyze src in
        check_targets "p only v" [ "v/D" ] (exit_targets res "p");
        check_targets "q only w" [ "w/D" ] (exit_targets res "q"));
    case "same call site along two chains gets two contexts" (fun () ->
        let src =
          {|int v, w; int *g;
            void inner(int *x) { g = x; }
            void outer1(void) { inner(&v); }
            void outer2(void) { inner(&w); }
            int main() { outer1(); outer2(); return 0; }|}
        in
        let res = analyze src in
        (* four invocation contexts besides main *)
        Alcotest.(check int) "5 nodes" 5 (Ig.n_nodes res.Analysis.graph);
        (* the second call strongly updates g: the last write wins *)
        check_targets "g at exit" [ "w/D" ] (exit_targets res "g"));
    case "context-insensitive ablation merges call sites" (fun () ->
        let opts =
          { Pointsto.Options.default with Pointsto.Options.context_sensitive = false }
        in
        let src =
          {|int v, w;
            int *id(int *x) { return x; }
            int main() { int *p, *q; p = id(&v); q = id(&w); return 0; }|}
        in
        let res = analyze ~opts src in
        check_targets "p polluted" [ "v/P"; "w/P" ] (exit_targets res "p");
        check_targets "q polluted" [ "v/P"; "w/P" ] (exit_targets res "q"));
    case "memoization reuses stored IN/OUT for equal inputs" (fun () ->
        (* both calls have identical mapped inputs; the analysis must
           still produce correct (and equal) results *)
        let src =
          {|int v; int *g;
            void f(int *x) { g = x; }
            int main() { f(&v); f(&v); return 0; }|}
        in
        check_targets "g" [ "v/D" ] (exit_targets (analyze src) "g"));
  ]

let recursion_tests =
  [
    case "simple recursion reaches a safe fixed point" (fun () ->
        check_exit "countdown"
          {|int a, b; int *g;
            void rec(int n) { if (n > 0) { g = &a; rec(n - 1); } else { g = &b; } }
            int main() { rec(5); return 0; }|}
          "g" [ "b/D" ]);
    case "recursion merging both branches" (fun () ->
        check_exit "either"
          {|int a, b; int *g; int c;
            void rec(int n) {
              if (n > 0) { if (c) g = &a; rec(n - 1); }
              else { if (c) g = &b; }
            }
            int main() { g = &a; rec(3); return 0; }|}
          "g" [ "a/P"; "b/P" ]);
    case "mutual recursion through approximate nodes" (fun () ->
        let src =
          {|int a, b; int *g;
            void even(int n);
            void odd(int n);
            void even(int n) { if (n) { odd(n - 1); } else { g = &a; } }
            void odd(int n) { if (n) { even(n - 1); } else { g = &b; } }
            int main() { even(4); return 0; }|}
        in
        let res = analyze src in
        check_targets "g" [ "a/P"; "b/P" ] (exit_targets res "g");
        Alcotest.(check bool) "has recursive node" true (Ig.n_recursive res.Analysis.graph >= 1);
        Alcotest.(check bool) "has approximate node" true
          (Ig.n_approximate res.Analysis.graph >= 1));
    case "recursive list walk over the heap" (fun () ->
        check_exit "list walk"
          {|struct n { struct n *next; };
            struct n *walk(struct n *p) { if (p != 0) return walk(p->next); return p; }
            int main() { struct n *h, *t;
              h = (struct n*)malloc(8); h->next = 0;
              t = walk(h);
              return 0; }|}
          "t" [ "heap/P" ]);
    case "recursion through a parameter pointer chain" (fun () ->
        check_exit "grow"
          {|int v; int *g;
            void rec(int **pp, int n) {
              if (n == 0) { *pp = &v; g = *pp; }
              else rec(pp, n - 1);
            }
            int main() { int *p; rec(&p, 3); return 0; }|}
          "p" [ "v/D" ]);
    case "recursion fixed point generalizes the input" (fun () ->
        (* the recursive call's input grows (p points deeper into the
           chain); pending-list restarts must converge *)
        check_exit "input generalization"
          {|struct n { struct n *next; };
            struct n x, y, z;
            struct n *last;
            void follow(struct n *p) {
              if (p->next != 0) follow(p->next);
              else last = p;
            }
            int main() { x.next = &y; y.next = &z; z.next = 0; follow(&x); return 0; }|}
          "last" [ "x/P"; "y/P"; "z/P" ]);
  ]

let fnptr_tests =
  [
    case "the paper's Figure 6 program" (fun () ->
        let src =
          {|int a,b,c;
            int *pa,*pb,*pc;
            int (*fp)();
            int foo(); int bar();
            void probeA(void); void probeB(void); void probeC(void); void probeD(void);
            int main() {
              int cond;
              pc = &c;
              if (cond) fp = foo; else fp = bar;
              probeA();
              fp();
              probeB();
              return 0;
            }
            int foo() { pa = &a; if (c) { fp(); } probeC(); return 0; }
            int bar() { pb = &b; probeD(); return 0; }|}
        in
        let res = analyze src in
        (* Point A: (fp,foo,P) (fp,bar,P) *)
        check_targets "A: fp" [ "fn:bar/P"; "fn:foo/P" ] (probe_targets res "probeA" "fp");
        check_targets "A: pc" [ "c/D" ] (probe_targets res "probeA" "pc");
        (* Point B: pa and pb possible *)
        check_targets "B: pa" [ "a/P" ] (probe_targets res "probeB" "pa");
        check_targets "B: pb" [ "b/P" ] (probe_targets res "probeB" "pb");
        (* Point C: fp definitely foo, pa definite *)
        check_targets "C: fp" [ "fn:foo/D" ] (probe_targets res ~fname:"foo" "probeC" "fp");
        check_targets "C: pa" [ "a/D" ] (probe_targets res ~fname:"foo" "probeC" "pa");
        (* Point D: fp definitely bar, pb definite *)
        check_targets "D: fp" [ "fn:bar/D" ] (probe_targets res ~fname:"bar" "probeD" "fp");
        check_targets "D: pb" [ "b/D" ] (probe_targets res ~fname:"bar" "probeD" "pb");
        (* Figure 7(c): foo's re-invocation through fp is recursive *)
        Alcotest.(check bool) "recursive node" true (Ig.n_recursive res.Analysis.graph >= 1));
    case "function pointer call through an array element" (fun () ->
        check_exit "table dispatch"
          {|int a, b; int *g;
            void fa(void) { g = &a; }
            void fb(void) { g = &b; }
            void (*tab[2])(void);
            int main(int argc, char **argv) {
              tab[0] = fa; tab[1] = fb;
              tab[argc]();
              return 0; }|}
          "g" [ "a/P"; "b/P" ]);
    case "function pointer in a struct field" (fun () ->
        check_exit "handler field"
          {|int v; int *g;
            struct ops { void (*handler)(void); };
            void h(void) { g = &v; }
            struct ops o;
            int main() { o.handler = h; o.handler(); return 0; }|}
          "g" [ "v/D" ]);
    case "multi-level function pointer" (fun () ->
        check_exit "pfp"
          {|int v; int *g;
            void h(void) { g = &v; }
            int main() { void (*fp)(void); void (**pfp)(void);
              fp = h; pfp = &fp;
              (*pfp)();
              return 0; }|}
          "g" [ "v/D" ]);
    case "function pointer passed as a parameter" (fun () ->
        check_exit "callback"
          {|int v; int *g;
            void h(void) { g = &v; }
            void apply(void (*cb)(void)) { cb(); }
            int main() { apply(h); return 0; }|}
          "g" [ "v/D" ]);
    case "function pointer returned from a function" (fun () ->
        check_exit "factory"
          {|int v; int *g;
            void h(void) { g = &v; }
            void (*get(void))(void) { return h; }
            int main() { void (*fp)(void); fp = get(); fp(); return 0; }|}
          "g" [ "v/D" ]);
    case "(*fp)() is the same as fp()" (fun () ->
        check_exit "deref call"
          {|int v; int *g;
            void h(void) { g = &v; }
            int main() { void (*fp)(void); fp = h; (*fp)(); return 0; }|}
          "g" [ "v/D" ]);
    case "indirect call with no targets warns and continues" (fun () ->
        let res =
          analyze
            {|int main() { void (*fp)(void); fp = 0; if (0) fp(); return 0; }|}
        in
        Alcotest.(check bool) "warned" true (res.Analysis.warnings <> []));
    case "each target analyzed with fp definitely bound (paper §5)" (fun () ->
        (* inside foo, a second call through fp must go to foo only *)
        let src =
          {|int *g; int a, b; int c;
            void probe1(void);
            int foo() { probe1(); return 0; }
            int bar() { g = &b; return 0; }
            int (*fp)();
            int main() { if (c) fp = foo; else fp = bar; fp(); return 0; }|}
        in
        let res = analyze src in
        check_targets "inside foo, fp -> foo only" [ "fn:foo/D" ]
          (probe_targets res ~fname:"foo" "probe1" "fp"));
  ]

let ig_tests =
  [
    case "invocation graph distinguishes call chains (Figure 2a)" (fun () ->
        let src =
          {|void f(void) { }
            void g(void) { f(); }
            int main() { g(); g(); f(); return 0; }|}
        in
        let res = analyze src in
        (* main -> g -> f, main -> g -> f, main -> f: 6 nodes *)
        Alcotest.(check int) "nodes" 6 (Ig.n_nodes res.Analysis.graph));
    case "recursive program graph (Figure 2b)" (fun () ->
        let src = {|void f(int n) { if (n) f(n - 1); } int main() { f(3); return 0; }|} in
        let res = analyze src in
        Alcotest.(check int) "nodes" 3 (Ig.n_nodes res.Analysis.graph);
        Alcotest.(check int) "recursive" 1 (Ig.n_recursive res.Analysis.graph);
        Alcotest.(check int) "approximate" 1 (Ig.n_approximate res.Analysis.graph));
    case "external calls contribute no nodes" (fun () ->
        let src = {|int printf(char *fmt, ...); int main() { printf("x"); return 0; }|} in
        let res = analyze src in
        Alcotest.(check int) "just main" 1 (Ig.n_nodes res.Analysis.graph));
    case "map info is deposited in the nodes" (fun () ->
        let src =
          {|int v;
            void callee(int **pp) { *pp = &v; }
            int main() { int *p; callee(&p); return 0; }|}
        in
        let res = analyze src in
        let has_info =
          Ig.fold (fun acc n -> acc || n.Ig.map_info <> []) false res.Analysis.graph
        in
        Alcotest.(check bool) "recorded" true has_info);
  ]

let suite =
  ( "interproc",
    mapping_tests @ return_tests @ context_tests @ recursion_tests @ fnptr_tests @ ig_tests )
