(** Tests for the deterministic big-program generator (lib/gen) and its
    [ptan gen] surface: byte-identity per seed, well-formedness of the
    emitted subset (parses and analyzes cleanly), the fn-ptr density
    knob, knob validation, and whole-corpus parallel bit-identity. *)

open Test_util
module Gen = Gen
module Pool = Pointsto.Pool
module Analysis = Pointsto.Analysis

let program k = Gen.program k
let lines s = List.length (String.split_on_char '\n' s) - 1

(** Parse generated text through the same front end the CLI uses. *)
let parse_gen text = Simple_ir.Simplify.of_string ~file:"<gen>" text

let indirect_sites p =
  Ir.fold_program
    (fun acc s ->
      match s.Ir.s_desc with Ir.Scall (_, Ir.Cindirect _, _) -> acc + 1 | _ -> acc)
    0 p

(* ------------------------------------------------------------------ *)
(* Determinism                                                        *)
(* ------------------------------------------------------------------ *)

(** Random in-range knobs, kept small so analysis stays instant. *)
let knobs_gen : Gen.knobs QCheck2.Gen.t =
  QCheck2.Gen.(
    let pct = int_bound 100 in
    map (fun ((seed, size, depth), (density, recursion, structs, globals)) ->
        {
          Gen.seed;
          size;
          funcs = 0;
          depth;
          fnptr_density = density;
          recursion;
          structs;
          globals;
        })
      (pair
         (triple (int_bound 10_000) (int_range 50 400) (int_range 1 6))
         (quad pct pct pct pct)))

let determinism_tests =
  [
    qcase ~count:25 "program is a pure function of its knobs" knobs_gen (fun k ->
        String.equal (program k) (program k));
    qcase ~count:25 "line_count agrees with the emitted text" knobs_gen (fun k ->
        Gen.line_count k = lines (program k));
    case "default knobs validate" (fun () ->
        match Gen.validate Gen.default with
        | Ok () -> ()
        | Error e -> Alcotest.failf "default rejected: %s" e);
    case "size floor: at least [size] lines when funcs is derived" (fun () ->
        List.iter
          (fun size ->
            let k = { Gen.default with Gen.size } in
            let n = Gen.line_count k in
            Alcotest.(check bool)
              (Printf.sprintf "size %d -> %d lines" size n)
              true (n >= size))
          [ 100; 1_000; 5_000 ]);
  ]

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                    *)
(* ------------------------------------------------------------------ *)

let small_shapes =
  [
    ("web", { Gen.default with Gen.seed = 11; size = 300; depth = 3; fnptr_density = 30 });
    ( "deep",
      { Gen.default with Gen.seed = 23; size = 300; depth = 6; fnptr_density = 0; structs = 50 }
    );
    ("plain", { Gen.default with Gen.seed = 7; size = 200; depth = 2 });
  ]

let wellformed_tests =
  [
    case "small programs of every shape parse and analyze cleanly" (fun () ->
        List.iter
          (fun (name, k) ->
            let p = parse_gen (program k) in
            let r = Analysis.analyze p in
            match r.Analysis.entry_output with
            | Some _ -> ()
            | None -> Alcotest.failf "%s: main does not terminate normally" name)
          small_shapes);
    case "the invocation graph spans main down to the bottom layer" (fun () ->
        (* the round-robin coverage edges keep the call DAG connected
           from main through every layer; the bottom layer is f0_* *)
        let k = { Gen.default with Gen.size = 300; Gen.depth = 3 } in
        let p = parse_gen (program k) in
        let r = Analysis.analyze p in
        let reached = Hashtbl.create 64 in
        let rec walk (n : Analysis.Ig.node) =
          Hashtbl.replace reached n.Analysis.Ig.func ();
          List.iter (fun (_, c) -> walk c) n.Analysis.Ig.children
        in
        walk r.Analysis.graph.Analysis.Ig.root;
        Alcotest.(check bool) "main reached" true (Hashtbl.mem reached "main");
        let bottom =
          Hashtbl.fold
            (fun f () acc -> acc || String.length f > 3 && String.sub f 0 3 = "f0_")
            reached false
        in
        Alcotest.(check bool) "bottom layer reached" true bottom);
  ]

(* ------------------------------------------------------------------ *)
(* Knobs                                                              *)
(* ------------------------------------------------------------------ *)

let density_tests =
  [
    case "density 0 yields no indirect call sites" (fun () ->
        let k = { Gen.default with Gen.size = 500; Gen.fnptr_density = 0 } in
        Alcotest.(check int) "no Cindirect" 0 (indirect_sites (parse_gen (program k))));
    case "density is monotone at a fixed seed" (fun () ->
        let at d =
          indirect_sites
            (parse_gen (program { Gen.default with Gen.size = 800; Gen.fnptr_density = d }))
        in
        let l = at 15 and h = at 60 in
        Alcotest.(check bool) "some sites at 15" true (l > 0);
        Alcotest.(check bool)
          (Printf.sprintf "60%% (%d) >= 15%% (%d)" h l)
          true (h >= l));
    case "depth 1 disables tables (nothing below to point at)" (fun () ->
        let k = { Gen.default with Gen.size = 200; Gen.depth = 1; Gen.fnptr_density = 80 } in
        Alcotest.(check int) "no Cindirect" 0 (indirect_sites (parse_gen (program k))));
  ]

let validate_err k = match Gen.validate k with Ok () -> false | Error _ -> true

let validate_tests =
  [
    case "out-of-range knobs are rejected" (fun () ->
        List.iter
          (fun (what, k) ->
            Alcotest.(check bool) what true (validate_err k))
          [
            ("size below floor", { Gen.default with Gen.size = 10 });
            ("size above cap", { Gen.default with Gen.size = 2_000_000 });
            ("depth 0", { Gen.default with Gen.depth = 0 });
            ("depth above cap", { Gen.default with Gen.depth = 40 });
            ("density above 100", { Gen.default with Gen.fnptr_density = 150 });
            ("negative recursion", { Gen.default with Gen.recursion = -1 });
            ("negative seed", { Gen.default with Gen.seed = -3 });
            ("funcs below depth", { Gen.default with Gen.funcs = 2; Gen.depth = 5 });
          ]);
    case "program raises Invalid on rejected knobs" (fun () ->
        match program { Gen.default with Gen.size = 10 } with
        | exception Gen.Invalid _ -> ()
        | _ -> Alcotest.fail "expected Invalid");
  ]

(* ------------------------------------------------------------------ *)
(* Parallel bit-identity over a small corpus                          *)
(* ------------------------------------------------------------------ *)

(** Digest of every per-statement points-to set, rendering included. *)
let stmt_digest (r : Analysis.result) =
  Hashtbl.fold (fun id s acc -> (id, s) :: acc) r.Analysis.stmt_pts []
  |> List.sort compare
  |> List.map (fun (id, s) -> Fmt.str "s%d:%a" id Pts.pp s)
  |> String.concat "\n" |> Digest.string |> Digest.to_hex

let parallel_tests =
  [
    case "-j 4 reproduces -j 1 bit-identically on a generated corpus" (fun () ->
        let corpus =
          List.map (fun (name, k) -> (name, parse_gen (program k))) small_shapes
        in
        let digests jobs =
          Pool.with_pool ~jobs (fun pool ->
              Pool.map pool (fun (name, p) -> (name, stmt_digest (Analysis.analyze p))) corpus)
        in
        List.iter2
          (fun (n, d1) (_, d4) -> Alcotest.(check string) n d1 d4)
          (digests 1) (digests 4));
  ]

(* ------------------------------------------------------------------ *)
(* CLI surface (spawns the real binary)                               *)
(* ------------------------------------------------------------------ *)

let ptan = "../bin/ptan.exe"

let in_temp f =
  let dir = Filename.temp_file "ptan-gen" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let run args =
  let out = Filename.temp_file "ptan-gen" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      let code = Sys.command (Printf.sprintf "%s %s > %s 2>/dev/null" ptan args out) in
      (code, In_channel.with_open_bin out In_channel.input_all))

let cli_tests =
  [
    case "gen to stdout is byte-identical across runs" (fun () ->
        let c1, o1 = run "gen --seed 42 --size 120" in
        let c2, o2 = run "gen --seed 42 --size 120" in
        Alcotest.(check int) "exit 0" 0 c1;
        Alcotest.(check int) "exit 0 again" 0 c2;
        Alcotest.(check bool) "non-empty" true (String.length o1 > 0);
        Alcotest.(check string) "same bytes" o1 o2);
    case "gen refuses to overwrite without --force, exit 2" (fun () ->
        in_temp (fun dir ->
            let f = Filename.concat dir "prog.c" in
            let c1, _ = run (Printf.sprintf "gen --seed 1 --size 100 --out %s" f) in
            Alcotest.(check int) "first write ok" 0 c1;
            let before = In_channel.with_open_bin f In_channel.input_all in
            let c2, _ = run (Printf.sprintf "gen --seed 2 --size 100 --out %s" f) in
            Alcotest.(check int) "refused" 2 c2;
            let after = In_channel.with_open_bin f In_channel.input_all in
            Alcotest.(check string) "file untouched" before after;
            let c3, _ = run (Printf.sprintf "gen --seed 2 --size 100 --out %s --force" f) in
            Alcotest.(check int) "forced" 0 c3;
            let forced = In_channel.with_open_bin f In_channel.input_all in
            Alcotest.(check bool) "replaced" false (String.equal before forced)));
    case "invalid knobs exit 2" (fun () ->
        let c, _ = run "gen --size 10" in
        Alcotest.(check int) "size floor" 2 c;
        let c, _ = run "gen --depth 0" in
        Alcotest.(check int) "depth floor" 2 c;
        let c, _ = run "gen --fnptr-density 150" in
        Alcotest.(check int) "density cap" 2 c);
  ]

let suite =
  ( "gen",
    determinism_tests @ wellformed_tests @ density_tests @ validate_tests @ parallel_tests
    @ cli_tests )
