(** Tests for the {!Pointsto.Trace} structured event layer: span nesting
    well-formedness, the Chrome trace-event JSON export, lossless
    collection across pool domains, and bit-identity of analysis results
    with the sink enabled and disabled.

    The sink is process-global, so every test that records runs inside
    {!recording}, which clears the rings first and always disables the
    sink afterwards — the rest of the suite keeps seeing the default
    disabled sink. *)

open Test_util
module Trace = Pointsto.Trace
module Pool = Pointsto.Pool
module Stats = Pointsto.Stats

let load_bench name = Simple_ir.Simplify.of_file ("../benchmarks/" ^ name ^ ".c")

(** Run [f] with a fresh enabled sink; return its result and the
    collected spans, leaving the sink disabled whatever happens. *)
let recording ?capacity f =
  Trace.enable ?capacity ();
  Trace.clear ();
  let r = Fun.protect ~finally:Trace.disable f in
  let spans = Trace.collect () in
  (r, spans)

(* ------------------------------------------------------------------ *)
(* Nesting                                                            *)
(* ------------------------------------------------------------------ *)

(** Check the spans of one domain form a laminar family: sweeping them
    by start time (ties: longest first) with a stack of open spans,
    every span must either nest entirely inside the innermost still-open
    span or start after it ended — partial overlap is a broken
    begin/end pairing. *)
let check_laminar name spans =
  let arr = Array.of_list spans in
  Array.sort
    (fun (a : Trace.span) (b : Trace.span) ->
      match compare a.Trace.sp_t0 b.Trace.sp_t0 with
      | 0 -> compare b.Trace.sp_t1 a.Trace.sp_t1
      | c -> c)
    arr;
  let stack = ref [] in
  Array.iter
    (fun (s : Trace.span) ->
      if s.Trace.sp_t1 < s.Trace.sp_t0 then
        Alcotest.failf "%s: span %s ends before it starts" name s.Trace.sp_name;
      let rec unwind () =
        match !stack with
        | top :: rest when top.Trace.sp_t1 <= s.Trace.sp_t0 ->
            stack := rest;
            unwind ()
        | _ -> ()
      in
      unwind ();
      (match !stack with
      | top :: _ when s.Trace.sp_t1 > top.Trace.sp_t1 ->
          Alcotest.failf "%s: span %s overlaps %s without nesting" name s.Trace.sp_name
            top.Trace.sp_name
      | _ -> ());
      stack := s :: !stack)
    arr

let by_domain spans =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s : Trace.span) ->
      Hashtbl.replace tbl s.Trace.sp_dom
        (s :: Option.value ~default:[] (Hashtbl.find_opt tbl s.Trace.sp_dom)))
    spans;
  Hashtbl.fold (fun d l acc -> (d, l) :: acc) tbl []

let nesting_tests =
  [
    case "livc spans form a laminar family per domain" (fun () ->
        let _, spans =
          recording (fun () -> Analysis.analyze (load_bench "livc"))
        in
        Alcotest.(check bool) "spans recorded" true (List.length spans > 100);
        Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ());
        List.iter (fun (d, l) -> check_laminar (Fmt.str "domain %d" d) l) (by_domain spans));
    case "root coverage of a direct run is at least 95%" (fun () ->
        let _, spans =
          recording (fun () -> Analysis.analyze (load_bench "livc"))
        in
        let cov = Trace.coverage spans in
        if cov < 0.95 then Alcotest.failf "coverage %.3f < 0.95" cov);
    case "capacity overflow drops and counts instead of growing" (fun () ->
        let _, spans =
          recording ~capacity:64 (fun () -> Analysis.analyze (load_bench "livc"))
        in
        Alcotest.(check int) "kept exactly the capacity" 64 (List.length spans);
        Alcotest.(check bool) "drops counted" true (Trace.dropped () > 0));
    case "fixpoint histograms see every body pass" (fun () ->
        let r, spans =
          recording (fun () -> Analysis.analyze (load_bench "livc"))
        in
        let bodies =
          List.length (List.filter (fun s -> s.Trace.sp_kind = Trace.Body) spans)
        in
        Alcotest.(check int) "one Body span per body pass" r.Analysis.bodies_analyzed bodies;
        let hist = Trace.iteration_histogram spans (Trace.Node, Trace.Body) in
        Alcotest.(check int) "histogram covers all body passes" bodies
          (List.fold_left (fun acc (n, c) -> acc + (n * c)) 0 hist));
  ]

(* ------------------------------------------------------------------ *)
(* Trace-event JSON                                                   *)
(* ------------------------------------------------------------------ *)

(** A tiny JSON reader — just enough to validate the export without a
    JSON library dependency. *)
type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let fail m = raise (Bad_json (Fmt.str "%s at offset %d" m !pos)) in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c = if peek () = c then advance () else fail (Fmt.str "expected %c" c) in
  let literal lit v =
    String.iter (fun c -> if peek () = c then advance () else fail ("bad " ^ lit)) lit;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '\000' -> fail "unterminated string"
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_string b (Fmt.str "\\u%04x" code)
          | _ -> fail "bad escape");
          advance ();
          go ()
      | c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Jnull
    | 't' -> literal "true" (Jbool true)
    | 'f' -> literal "false" (Jbool false)
    | '"' -> Jstr (parse_string ())
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); Jarr [] end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); items (v :: acc)
            | ']' -> advance (); Jarr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Jobj [] end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((k, v) :: acc)
            | '}' -> advance (); Jobj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | _ ->
        let start = !pos in
        let num_char c =
          (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
        in
        while num_char (peek ()) do advance () done;
        if !pos = start then fail "expected a value";
        Jnum (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field name = function
  | Jobj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> Alcotest.failf "missing field %s" name)
  | _ -> Alcotest.failf "not an object (looking for %s)" name

let jstr = function Jstr s -> s | _ -> Alcotest.fail "expected a string"
let jnum = function Jnum f -> f | _ -> Alcotest.fail "expected a number"

let kind_names =
  List.map Trace.kind_name
    [
      Trace.Analysis; Trace.Node; Trace.Body; Trace.Loop; Trace.Map; Trace.Unmap;
      Trace.Cache_load; Trace.Cache_store; Trace.Task; Trace.Widen;
    ]

let json_tests =
  [
    case "export parses and round-trips the span count" (fun () ->
        let _, spans =
          recording (fun () -> Analysis.analyze (load_bench "livc"))
        in
        let events =
          match field "traceEvents" (parse_json (Trace.json_string spans)) with
          | Jarr evs -> evs
          | _ -> Alcotest.fail "traceEvents is not an array"
        in
        let complete = List.filter (fun e -> jstr (field "ph" e) = "X") events in
        Alcotest.(check int) "one X event per span" (List.length spans)
          (List.length complete);
        let metas = List.filter (fun e -> jstr (field "ph" e) = "M") events in
        Alcotest.(check int) "one thread_name event per domain" 1 (List.length metas);
        List.iter
          (fun e ->
            let cat = jstr (field "cat" e) in
            if not (List.mem cat kind_names) then Alcotest.failf "unknown cat %s" cat;
            ignore (jstr (field "name" e));
            if jnum (field "ts" e) < 0. then Alcotest.fail "negative ts";
            if jnum (field "dur" e) < 0. then Alcotest.fail "negative dur";
            ignore (jnum (field "pid" e));
            ignore (jnum (field "tid" e));
            let args = field "args" e in
            ignore (jstr (field "ctx" args));
            ignore (jnum (field "stmts" args));
            ignore (jnum (field "pts_in" args));
            ignore (jnum (field "pts_out" args)))
          complete);
    case "names with JSON metacharacters survive escaping" (fun () ->
        let sp name =
          {
            Trace.sp_kind = Trace.Task;
            sp_name = name;
            sp_ctx = -1;
            sp_dom = 0;
            sp_t0 = 1.;
            sp_t1 = 2.;
            sp_stmts = 0;
            sp_in = -1;
            sp_out = -1;
          }
        in
        let names = [ {|a"b|}; {|back\slash|}; "nl\nline"; "tab\there"; "ctl\001x" ] in
        let parsed = parse_json (Trace.json_string (List.map sp names)) in
        let events =
          match field "traceEvents" parsed with
          | Jarr evs -> List.filter (fun e -> jstr (field "ph" e) = "X") evs
          | _ -> Alcotest.fail "traceEvents is not an array"
        in
        List.iter2
          (fun want e ->
            Alcotest.(check string) "name round-trips" want (jstr (field "name" e)))
          names events);
    case "save_json writes the same bytes json_string returns" (fun () ->
        let _, spans =
          recording (fun () -> Analysis.analyze (load_bench "stanford"))
        in
        let file = Filename.temp_file "ptan-trace" ".json" in
        Fun.protect
          ~finally:(fun () -> Sys.remove file)
          (fun () ->
            Trace.save_json file spans;
            let written = In_channel.with_open_bin file In_channel.input_all in
            Alcotest.(check string) "bytes" (Trace.json_string spans) written));
  ]

(* ------------------------------------------------------------------ *)
(* Pool merge                                                         *)
(* ------------------------------------------------------------------ *)

(** Everything deterministic about a span — what it did, not when. Task
    spans are excluded (the pool adds its own around each task). *)
let span_key (s : Trace.span) =
  Fmt.str "%s|%s|%08x|%d|%d|%d"
    (Trace.kind_name s.Trace.sp_kind)
    s.Trace.sp_name
    (s.Trace.sp_ctx land 0xffffffff)
    s.Trace.sp_stmts s.Trace.sp_in s.Trace.sp_out

let multiset spans =
  spans
  |> List.filter (fun (s : Trace.span) -> s.Trace.sp_kind <> Trace.Task)
  |> List.map span_key |> List.sort compare

let merge_tests =
  [
    case "-j 8 collection loses no spans vs sequential runs" (fun () ->
        let names = [ "livc"; "config"; "sim"; "genetic" ] in
        let parsed = List.map (fun n -> (n, load_bench n)) names in
        let sequential =
          List.concat_map
            (fun (_, p) ->
              let _, spans = recording (fun () -> Analysis.analyze p) in
              multiset spans)
            parsed
          |> List.sort compare
        in
        let _, pooled =
          recording (fun () ->
              Pool.with_pool ~jobs:8 (fun pool ->
                  Pool.map pool (fun (_, p) -> Analysis.analyze p) parsed))
        in
        Alcotest.(check int) "no drops" 0 (Trace.dropped ());
        Alcotest.(check (list string)) "span multisets agree" sequential (multiset pooled);
        List.iter
          (fun (d, l) -> check_laminar (Fmt.str "domain %d" d) l)
          (by_domain pooled));
  ]

(* ------------------------------------------------------------------ *)
(* Disabled-sink identity                                             *)
(* ------------------------------------------------------------------ *)

(** The Table 3-6 rows of a result, as one comparable string. *)
let rows r =
  let open Stats in
  let i = indirect_stats r in
  let g = general r in
  let s = ig_stats r in
  Fmt.str "%d %d %d %d %.3f | %d %d %d %d %.2f %d | %d %d %d %d %d %.3f %.3f" i.ind_refs
    i.scalar_rep i.to_stack i.to_heap i.avg g.stack_to_stack g.stack_to_heap g.heap_to_heap
    g.heap_to_stack g.avg_per_stmt g.max_per_stmt s.ig_nodes s.call_sites s.n_funcs
    s.n_recursive s.n_approximate s.avg_per_call_site s.avg_per_func

let stmt_digest r =
  Hashtbl.fold (fun id s acc -> (id, s) :: acc) r.Analysis.stmt_pts []
  |> List.sort compare
  |> List.map (fun (id, s) -> Fmt.str "s%d:%a" id Pts.pp s)
  |> String.concat "\n" |> Digest.string |> Digest.to_hex

let identity_tests =
  [
    case "tracing on and off give bit-identical results" (fun () ->
        List.iter
          (fun name ->
            let p = load_bench name in
            let off = Analysis.analyze p in
            let on, _ = recording (fun () -> Analysis.analyze p) in
            Alcotest.(check string) (name ^ ": table rows") (rows off) (rows on);
            Alcotest.(check string)
              (name ^ ": statement sets")
              (stmt_digest off) (stmt_digest on))
          [ "livc"; "stanford" ]);
    case "a disabled sink records nothing and start returns 0" (fun () ->
        Trace.clear ();
        Alcotest.(check bool) "off" false (Trace.on ());
        Alcotest.(check (float 0.)) "start is 0" 0. (Trace.start ());
        Trace.emit Trace.Node ~name:"nope" ~t0:1. ();
        ignore (Analysis.analyze (load_bench "stanford"));
        Alcotest.(check int) "no spans" 0 (List.length (Trace.collect ())));
  ]

let suite =
  ("trace", nesting_tests @ json_tests @ merge_tests @ identity_tests)
