(** Tests for the demand query layer: {!Alias.Query}'s parser and the
    three query forms ([alias] / [pts] / [calls]), the {!Alias.Queries}
    verdicts they expose ([refs_alias] / [derefs_alias]) on
    function-pointer-heavy programs, and the analyze-once / query-many
    contract — a result loaded from disk answers every query (including
    the error cases) identically to the freshly analyzed one. *)

open Test_util
module Query = Alias.Query
module Queries = Alias.Queries
module Persist = Pointsto.Persist
module Options = Pointsto.Options

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let err = function
  | Error e -> e
  | Ok _ -> Alcotest.fail "unexpected success"

let check_answer res line expected =
  Alcotest.(check string) line expected (ok (Query.run res line))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(** The error text is part of the CLI surface; assert the substance
    (a keyword of the message) rather than the full phrasing. *)
let check_error res line fragment =
  let e = err (Query.run res line) in
  if not (contains e fragment) then
    Alcotest.failf "%s: error %S does not mention %S" line e fragment

(* ------------------------------------------------------------------ *)
(* Parsing *)

let parse_roundtrip () =
  let checkq line q =
    match Query.parse line with
    | Ok q' -> Alcotest.(check bool) line true (q = q')
    | Error e -> Alcotest.failf "%s: parse error %s" line e
  in
  checkq "alias main s12 p q"
    (Query.Alias_q { func = "main"; stmt = 12; p = "p"; q = "q" });
  checkq "alias main 12 p q"
    (Query.Alias_q { func = "main"; stmt = 12; p = "p"; q = "q" });
  checkq "  pts\tmain  s3  fp "
    (Query.Pts_q { func = "main"; stmt = 3; var = "fp" });
  checkq "calls s7" (Query.Calls_q { stmt = 7 });
  checkq "calls 7" (Query.Calls_q { stmt = 7 })

let parse_errors () =
  let bad line fragment =
    let e = err (Query.parse line) in
    if not (contains e fragment) then
      Alcotest.failf "%s: error %S does not mention %S" line e fragment
  in
  bad "" "empty";
  bad "frobnicate main s1 p" "unknown query";
  bad "alias main s1 p" "alias expects";
  bad "alias main s1 p q r" "alias expects";
  bad "pts main" "pts expects";
  bad "calls" "calls expects";
  bad "pts main sX p" "statement id";
  bad "calls -3" "statement id"

(* ------------------------------------------------------------------ *)
(* Answers on a function-pointer program (paper Figures 6/7 shape): a
   function pointer bound on both arms of a conditional, then called
   indirectly; the callees write distinct globals through pointers. *)

let fp_src =
  {|
    int a; int b; int c;
    int *pa; int *pb; int *pc;
    int (*fp)();
    int foo() { pa = &a; return 0; }
    int bar() { pb = &b; return 0; }
    void probe1() {}
    void probe2() {}
    int main() {
      int cond;
      pc = &c;
      if (cond) fp = foo; else fp = bar;
      probe1();
      fp();
      probe2();
      return 0;
    }
  |}

let indirect_call_stmt (res : Analysis.result) =
  let found =
    Ir.fold_program
      (fun acc s ->
        match s.Ir.s_desc with
        | Ir.Scall (_, Ir.Cindirect _, _) -> Some s.Ir.s_id
        | _ -> acc)
      None res.Analysis.prog
  in
  match found with
  | Some id -> id
  | None -> Alcotest.fail "no indirect call in program"

let non_call_stmt (res : Analysis.result) =
  let found =
    Ir.fold_program
      (fun acc s ->
        match (acc, s.Ir.s_desc) with
        | None, Ir.Sassign _ -> Some s.Ir.s_id
        | _ -> acc)
      None res.Analysis.prog
  in
  match found with
  | Some id -> id
  | None -> Alcotest.fail "no assignment in program"

let fp_pts () =
  let res = analyze fp_src in
  let p1 = probe_stmt res "probe1" in
  check_answer res
    (Fmt.str "pts main s%d fp" p1)
    "fp -> {fn:bar/P, fn:foo/P}";
  check_answer res (Fmt.str "pts main %d pc" p1) "pc -> {c/D}";
  (* pa is only assigned inside foo, which has not run before probe1 *)
  check_answer res (Fmt.str "pts main s%d pa" p1) "pa -> {}"

let fp_calls () =
  let res = analyze fp_src in
  let icall = indirect_call_stmt res in
  check_answer res (Fmt.str "calls s%d" icall)
    (Fmt.str "s%d -> {bar, foo}" icall);
  let p1 = probe_stmt res "probe1" in
  check_answer res (Fmt.str "calls %d" p1) (Fmt.str "s%d -> {probe1}" p1);
  check_error res (Fmt.str "calls s%d" (non_call_stmt res)) "not a call"

let fp_semantic_errors () =
  let res = analyze fp_src in
  let p1 = probe_stmt res "probe1" in
  check_error res (Fmt.str "pts nosuch s%d fp" p1) "unknown function";
  check_error res (Fmt.str "pts main s%d nosuchvar" p1) "unknown variable";
  check_error res (Fmt.str "pts main s%d foo" p1) "is a function";
  check_error res "calls s99999" "no statement";
  check_error res (Fmt.str "alias main s%d fp nosuchvar" p1) "unknown variable"

(* ------------------------------------------------------------------ *)
(* Verdicts: the alias query against scalar and function pointers, and
   the underlying Queries.refs_alias / derefs_alias API directly. *)

let verdict_src =
  {|
    int x; int y;
    int foo() { return 0; }
    int bar() { return 1; }
    void probe1() {}
    int main() {
      int *p; int *q; int *r;
      int (*f1)(); int (*f2)(); int (*f3)();
      int cond;
      p = &x; q = &x; r = &y;
      f1 = foo; f2 = foo; f3 = bar;
      if (cond) r = &x;
      probe1();
      return 0;
    }
  |}

let alias_verdicts () =
  let res = analyze verdict_src in
  let p1 = probe_stmt res "probe1" in
  let q a b = Fmt.str "alias main s%d %s %s" p1 a b in
  (* p and q both point definitely at the singular x *)
  check_answer res (q "p" "q") "must-alias";
  (* r possibly points at x (conditional rebinding), so *p / *r may alias *)
  check_answer res (q "p" "r") "may-alias";
  (* two pointers into provably distinct singular cells *)
  check_answer res (q "f1" "f3") "no-alias";
  (* dereferencing a function pointer denotes code, not storage:
     function locations are never data l-values, so even two pointers
     bound to the same function have no aliasing dereferences *)
  check_answer res (q "f1" "f2") "no-alias"

let queries_api () =
  let res = analyze verdict_src in
  let fn =
    match Ir.find_func res.Analysis.prog "main" with
    | Some f -> f
    | None -> Alcotest.fail "no main"
  in
  let sid = probe_stmt res "probe1" in
  let d = Queries.derefs_alias res fn sid in
  Alcotest.(check string) "derefs p q" "must-alias"
    (Queries.verdict_to_string (d "p" "q"));
  Alcotest.(check string) "derefs p r" "may-alias"
    (Queries.verdict_to_string (d "p" "r"));
  Alcotest.(check string) "derefs f1 f3" "no-alias"
    (Queries.verdict_to_string (d "f1" "f3"));
  (* refs_alias with mixed ref forms: *p is exactly the l-value x *)
  let v =
    Queries.refs_alias res fn sid (Ir.deref_ref "p") (Ir.var_ref "x")
  in
  Alcotest.(check string) "refs *p x" "must-alias"
    (Queries.verdict_to_string v);
  let v =
    Queries.refs_alias res fn sid (Ir.var_ref "x") (Ir.var_ref "y")
  in
  Alcotest.(check string) "refs x y" "no-alias"
    (Queries.verdict_to_string v)

(* ------------------------------------------------------------------ *)
(* Analyze-once / query-many: a result loaded from disk must answer
   every query line — successes and failures alike — identically to
   the fresh in-memory result. *)

let roundtrip_queries () =
  let dir = Filename.temp_file "ptan-qtest" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let source = Filename.concat dir "fp.c" in
  let cache = Filename.concat dir "fp.ptc" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let oc = open_out source in
      output_string oc fp_src;
      close_out oc;
      let opts = Options.default in
      let fresh = Analysis.of_file ~opts source in
      Persist.save ~source fresh cache;
      let loaded =
        match Persist.load ~source ~opts cache with
        | Some r -> r
        | None -> Alcotest.fail "load returned None on a fresh save"
      in
      let p1 = probe_stmt fresh "probe1" in
      let p2 = probe_stmt fresh "probe2" in
      let icall = indirect_call_stmt fresh in
      let lines =
        [
          Fmt.str "pts main s%d fp" p1;
          Fmt.str "pts main s%d fp" p2;
          Fmt.str "pts main s%d pa" p2;
          Fmt.str "pts main s%d pb" p2;
          Fmt.str "pts main s%d pc" p2;
          Fmt.str "calls s%d" icall;
          Fmt.str "calls s%d" p1;
          Fmt.str "alias main s%d pa pb" p2;
          Fmt.str "alias main s%d pc pc" p2;
          (* error answers must round-trip too *)
          Fmt.str "pts nosuch s%d fp" p1;
          "pts main s1 foo";
          "calls s99999";
          "frobnicate";
        ]
      in
      List.iter
        (fun line ->
          let show = function Ok s -> "ok: " ^ s | Error e -> "error: " ^ e in
          Alcotest.(check string) line
            (show (Query.run fresh line))
            (show (Query.run loaded line)))
        lines;
      (* and the loaded result resolved the indirect call like the fresh one *)
      Alcotest.(check string) "loaded calls"
        (Fmt.str "s%d -> {bar, foo}" icall)
        (ok (Query.run loaded (Fmt.str "calls s%d" icall))))

let suite =
  ( "queries",
    [
      case "parse roundtrip" parse_roundtrip;
      case "parse errors" parse_errors;
      case "fp pts" fp_pts;
      case "fp calls" fp_calls;
      case "fp semantic errors" fp_semantic_errors;
      case "alias verdicts" alias_verdicts;
      case "queries api" queries_api;
      case "persisted round trip" roundtrip_queries;
    ] )
