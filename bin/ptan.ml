(** ptan — points-to analysis driver.

    Subcommands:
    - [simple FILE]    dump the SIMPLE lowering of a C file
    - [analyze FILE]   run the analysis and print per-statement points-to
    - [ig FILE]        print the invocation graph
    - [stats FILE]     print the Tables 2-6 statistics for one file
    - [tables FILES]   the same statistics for many files, [-j N] in parallel
    - [alias FILE]     print alias pairs at the end of main
    - [callgraph FILE] compare call-graph strategies
    - [replace FILE]   show pointer-replacement opportunities
    - [query FILE Q]   answer one demand query against the (cached) result
    - [batch FILE [QS]] answer newline-delimited queries from a file or stdin
    - [serve FILES]    resident daemon answering queries over stdio or a socket

    Analyzing subcommands consult a disk cache of persisted results
    (see {!Pointsto.Persist}); [--cache-dir] relocates it and
    [--no-cache] bypasses it.

    The parallel modes ([tables -j], [batch -j]) fan work out over a
    {!Pointsto.Pool} of domains. Analysis state is domain-local, so
    output is bit-identical to a sequential run; results are printed in
    input order regardless of which domain finished first. *)

module Ir = Simple_ir.Ir
module Persist = Pointsto.Persist
module Trace = Pointsto.Trace

let load file = Simple_ir.Simplify.of_file file

(** Run [f] with the trace sink enabled when [--trace-out FILE] was
    given, then write the collected spans as trace-event JSON. The
    confirmation goes to stderr so stdout stays bit-identical with and
    without tracing. *)
let with_trace trace_out f =
  match trace_out with
  | None -> f ()
  | Some path ->
      Trace.enable ();
      Trace.clear ();
      let finally () =
        Trace.disable ();
        let spans = Trace.collect () in
        Trace.save_json path spans;
        Fmt.epr "trace: wrote %d spans to %s@." (List.length spans) path
      in
      Fun.protect ~finally f

let with_errors f =
  try f () with
  | Cfront.Srcloc.Error (loc, m) ->
      Fmt.epr "%a: error: %s@." Cfront.Srcloc.pp loc m;
      exit 1
  | Simple_ir.Simplify.Unsupported (loc, m) ->
      Fmt.epr "%a: unsupported: %s@." Cfront.Srcloc.pp loc m;
      exit 1
  | Pointsto.Analysis.No_entry e ->
      Fmt.epr "error: no entry function '%s'@." e;
      exit 1

let opts_of ~no_context ~no_definite ~sym_depth ~no_share ~heap_by_site =
  {
    Pointsto.Options.default with
    Pointsto.Options.context_sensitive = not no_context;
    use_definite = not no_definite;
    max_sym_depth = sym_depth;
    share_contexts = not no_share;
    heap_by_site;
  }

let cmd_simple file =
  with_errors (fun () ->
      let p = load file in
      Simple_ir.Pp.pp_program Fmt.stdout p)

(** [cache] is [None] when [--no-cache] was given, [Some dir] with
    [dir = None] meaning the default cache directory. [incremental]
    selects the stable summary-carrying cache entry
    ({!Persist.analyze_cached} with [~incremental:true]); it needs the
    cache and is ignored under [--no-cache]. *)
let analyze_file ?(opts = Pointsto.Options.default) ?budget ?(cache = None)
    ?(incremental = false) file =
  match cache with
  | None ->
      let p = load file in
      Pointsto.Analysis.analyze ~opts ?budget p
  | Some cache_dir -> fst (Persist.analyze_cached ?cache_dir ~opts ?budget ~incremental file)

(** One-line degradation report, printed after a degraded result's
    normal output; paired with exit code 3. *)
let pp_degraded ppf (d : Pointsto.Analysis.degradation) =
  Fmt.pf ppf
    "degraded: %a (budget: %a); tables come from the widened context-insensitive, \
     possible-only rerun"
    Pointsto.Guard.pp_trip d.Pointsto.Analysis.deg_trip Pointsto.Guard.pp_budget
    d.Pointsto.Analysis.deg_budget

(** Exit code for runs that completed but under degradation. *)
let exit_degraded = 3

let cmd_analyze file cache incremental budget no_context no_definite sym_depth no_share
    heap_by_site show_null show_stats trace_out =
  with_errors (fun () ->
    with_trace trace_out @@ fun () ->
      let opts = opts_of ~no_context ~no_definite ~sym_depth ~no_share ~heap_by_site in
      let r = analyze_file ~opts ?budget ~cache ~incremental file in
      List.iter (fun w -> Fmt.pr "warning: %s@." w) r.Pointsto.Analysis.warnings;
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.Pointsto.Analysis.stmt_pts []
      |> List.sort compare
      |> List.iter (fun (id, s) ->
             let s = if show_null then s else Pointsto.Pts.remove_tgt Pointsto.Loc.Null s in
             Fmt.pr "s%d: %a@." id Pointsto.Pts.pp s);
      if not no_share then
        Fmt.pr "sub-tree sharing: %d hits, %d body passes@." r.Pointsto.Analysis.share_hits
          r.Pointsto.Analysis.bodies_analyzed;
      if show_stats then Fmt.pr "%a@." Pointsto.Stats.pp_engine_metrics r;
      match r.Pointsto.Analysis.degraded with
      | Some d ->
          Fmt.pr "%a@." pp_degraded d;
          exit exit_degraded
      | None -> ())

let cmd_heap file cache =
  with_errors (fun () ->
      let r = analyze_file ~opts:Heap_analysis.Connection.options ~cache file in
      let module C = Heap_analysis.Connection in
      Fmt.pr "allocation sites: %a@."
        Fmt.(list ~sep:(any ", ") int)
        (C.all_sites r);
      let sum = C.summarize r in
      Fmt.pr "heap-directed pointers: %d; pairs: %d; provably disjoint: %d@."
        sum.C.n_heap_ptrs sum.C.n_pairs sum.C.n_disjoint;
      match r.Pointsto.Analysis.entry_output with
      | None -> ()
      | Some s ->
          let fn =
            Option.get (Simple_ir.Ir.find_func r.Pointsto.Analysis.prog "main")
          in
          let hp = C.heap_pointers r fn s in
          if hp <> [] then Fmt.pr "@.connection matrix at exit of main:@.%a" C.pp_matrix (hp, C.matrix s hp))

let cmd_constants file cache =
  with_errors (fun () ->
      let r = analyze_file ~cache file in
      let cp = Constprop.run r in
      let sites = Constprop.fold_sites cp in
      Fmt.pr "%d constant operand reads@." (List.length sites);
      List.iter
        (fun fs ->
          Fmt.pr "  s%d (%s): %a = %Ld@." fs.Constprop.fs_stmt fs.Constprop.fs_func
            Pointsto.Loc.pp fs.Constprop.fs_loc fs.Constprop.fs_value)
        sites)

let cmd_ig file cache =
  with_errors (fun () ->
      let r = analyze_file ~cache file in
      Fmt.pr "%a" Pointsto.Invocation_graph.pp r.Pointsto.Analysis.graph;
      let st = Pointsto.Stats.ig_stats r in
      Fmt.pr "nodes %d, call sites %d, funcs %d, R %d, A %d, Avgc %.2f, Avgf %.2f@."
        st.Pointsto.Stats.ig_nodes st.Pointsto.Stats.call_sites st.Pointsto.Stats.n_funcs
        st.Pointsto.Stats.n_recursive st.Pointsto.Stats.n_approximate
        st.Pointsto.Stats.avg_per_call_site st.Pointsto.Stats.avg_per_func)

(** The Tables 2-6 report for one analyzed file; shared by [stats] and
    the multi-file [tables] (whose workers render it off the main
    domain, hence a formatter rather than direct printing). *)
let pp_stats_report ppf r =
  let c = Pointsto.Stats.characteristics r in
  Fmt.pf ppf "SIMPLE stmts: %d; abstract stack min %d max %d@." c.Pointsto.Stats.c_stmts
    c.Pointsto.Stats.c_min_vars c.Pointsto.Stats.c_max_vars;
  let i = Pointsto.Stats.indirect_stats r in
  let open Pointsto.Stats in
  Fmt.pf ppf
    "indirect refs: %d (1D %d/%d, 1P %d/%d, 2P %d/%d, 3P %d/%d, 4+P %d/%d); rep %d; \
     to-stack %d; to-heap %d; avg %.2f@."
    i.ind_refs i.one_d.scalar i.one_d.array i.one_p.scalar i.one_p.array i.two_p.scalar
    i.two_p.array i.three_p.scalar i.three_p.array i.four_plus_p.scalar i.four_plus_p.array
    i.scalar_rep i.to_stack i.to_heap i.avg;
  let g = general r in
  Fmt.pf ppf "pairs: SS %d SH %d HH %d HS %d; avg/stmt %.1f; max/stmt %d@." g.stack_to_stack
    g.stack_to_heap g.heap_to_heap g.heap_to_stack g.avg_per_stmt g.max_per_stmt;
  let s = ig_stats r in
  Fmt.pf ppf "IG: nodes %d sites %d funcs %d R %d A %d Avgc %.2f Avgf %.2f@." s.ig_nodes
    s.call_sites s.n_funcs s.n_recursive s.n_approximate s.avg_per_call_site s.avg_per_func;
  Fmt.pf ppf "%a@." Pointsto.Stats.pp_engine_metrics r

let cmd_stats file cache incremental budget trace_out =
  with_errors (fun () ->
    with_trace trace_out @@ fun () ->
      let r = analyze_file ?budget ~cache ~incremental file in
      Fmt.pr "%a" pp_stats_report r;
      match r.Pointsto.Analysis.degraded with
      | Some d ->
          Fmt.pr "%a@." pp_degraded d;
          exit exit_degraded
      | None -> ())

(** Render an analysis failure the way {!with_errors} reports it, for
    the per-file handling in [tables] where one bad file must not kill
    the whole run. *)
let describe_exn = function
  | Cfront.Srcloc.Error (loc, m) -> Fmt.str "%a: error: %s" Cfront.Srcloc.pp loc m
  | Simple_ir.Simplify.Unsupported (loc, m) ->
      Fmt.str "%a: unsupported: %s" Cfront.Srcloc.pp loc m
  | Pointsto.Analysis.No_entry e -> Fmt.str "error: no entry function '%s'" e
  | Pointsto.Guard.Cancelled -> "error: cancelled (task timeout)"
  | Pointsto.Guard.Exhausted t ->
      Fmt.str "error: %a (even the widened rerun blew the budget)" Pointsto.Guard.pp_trip t
  | Pointsto.Fault.Injected p -> Fmt.str "error: injected fault '%s'" p
  | e -> Printexc.to_string e

(** Exit policy for multi-file commands, where some files may have
    failed and others degraded. Failure wins (exit 1), then degradation
    (exit 3), then success — but the signals are never silently merged:
    when both occur, a summary on stderr records the degradation count
    that the exit code cannot carry, and the per-file degradation
    reports have already been printed. *)
let finish_multi ~failed ~degraded =
  if failed > 0 || degraded > 0 then
    Fmt.epr "ptan: %d file(s) failed, %d degraded@." failed degraded;
  if failed > 0 then exit 1;
  if degraded > 0 then exit exit_degraded

let cmd_tables files cache incremental budget timeout_ms jobs show_stats trace_out =
  with_trace trace_out @@ fun () ->
  let task file () =
    let r = analyze_file ?budget ~cache ~incremental file in
    (Fmt.str "%a" pp_stats_report r, r.Pointsto.Analysis.metrics,
     r.Pointsto.Analysis.degraded)
  in
  let results =
    Pointsto.Pool.with_pool ~jobs (fun pool ->
        Pointsto.Pool.run_list ?timeout_ms pool (List.map task files))
  in
  let failed = ref 0 in
  let degraded_n = ref 0 in
  let metrics = ref [] in
  List.iter2
    (fun file res ->
      Fmt.pr "== %s ==@." file;
      match res with
      | Ok (report, m, deg) ->
          metrics := m :: !metrics;
          Fmt.pr "%s" report;
          Option.iter
            (fun d ->
              incr degraded_n;
              Fmt.pr "%a@." pp_degraded d)
            deg
      | Error e ->
          incr failed;
          Fmt.pr "%s@." (describe_exn e))
    files results;
  (* the aggregate sums only the files that analyzed; with no successes
     there is nothing to sum, so print no table at all *)
  if show_stats && !metrics <> [] then begin
    let header =
      if !failed = 0 then Fmt.str "%d files" (List.length !metrics)
      else
        Fmt.str "%d of %d files analyzed; errored files excluded"
          (List.length !metrics) (List.length files)
    in
    Fmt.pr "@.== aggregate (%s) ==@.%a@." header Pointsto.Metrics.pp
      (Pointsto.Metrics.sum (List.rev !metrics))
  end;
  finish_multi ~failed:!failed ~degraded:!degraded_n

(** [profile] always re-analyzes (a result served from the disk cache
    records no engine spans) with the trace sink enabled, prints the
    self-profile report and optionally writes the trace-event JSON. *)
let cmd_profile files budget timeout_ms jobs trace_out top =
  Trace.enable ();
  Trace.clear ();
  let task file () =
    let t0 = Trace.start () in
    let p = load file in
    let r = Pointsto.Analysis.analyze ?budget p in
    Trace.emit Trace.Task ~name:(Filename.basename file) ~t0 ();
    r
  in
  let results =
    Pointsto.Pool.with_pool ~jobs (fun pool ->
        Pointsto.Pool.run_list ?timeout_ms pool (List.map task files))
  in
  Trace.disable ();
  let failed = ref 0 in
  let degraded_n = ref 0 in
  List.iter2
    (fun file res ->
      match res with
      | Ok r ->
          Fmt.pr "== %s ==@.%d IG nodes, %d body passes, %d sharing hits@." file
            r.Pointsto.Analysis.graph.Pointsto.Invocation_graph.n_nodes
            r.Pointsto.Analysis.bodies_analyzed r.Pointsto.Analysis.share_hits;
          Option.iter
            (fun d ->
              incr degraded_n;
              Fmt.pr "%a@." pp_degraded d)
            r.Pointsto.Analysis.degraded
      | Error e ->
          incr failed;
          Fmt.pr "== %s ==@.%s@." file (describe_exn e))
    files results;
  let spans = Trace.collect () in
  Fmt.pr "@.%a" (Trace.pp_profile ~top) spans;
  Option.iter
    (fun path ->
      Trace.save_json path spans;
      Fmt.epr "trace: wrote %d spans to %s@." (List.length spans) path)
    trace_out;
  finish_multi ~failed:!failed ~degraded:!degraded_n

let cmd_alias file cache =
  with_errors (fun () ->
      let r = analyze_file ~cache file in
      match r.Pointsto.Analysis.entry_output with
      | None -> Fmt.pr "main does not terminate normally@."
      | Some s ->
          let s = Pointsto.Pts.remove_tgt Pointsto.Loc.Null s in
          Fmt.pr "points-to at exit: %a@." Pointsto.Pts.pp s;
          Fmt.pr "alias pairs:      %a@." Alias.Pairs.pp (Alias.Pairs.of_pts s))

let cmd_callgraph file =
  with_errors (fun () ->
      let p = load file in
      List.iter
        (fun s ->
          let nodes = Alias.Callgraph.ig_size p s in
          let fanout = Alias.Callgraph.indirect_fanout p s in
          Fmt.pr "%-24s IG nodes: %4d   indirect fanout: [%a]@."
            (Alias.Callgraph.strategy_name s) nodes
            (Fmt.list ~sep:(Fmt.any "; ") Fmt.int)
            fanout)
        [ Alias.Callgraph.Precise; Alias.Callgraph.Naive; Alias.Callgraph.Address_taken ])

let cmd_replace file cache =
  with_errors (fun () ->
      let r = analyze_file ~cache file in
      let reps = Transforms.Pointer_replace.find r in
      Fmt.pr "%d replacement opportunities@." (List.length reps);
      List.iter (fun rp -> Fmt.pr "  %a@." Transforms.Pointer_replace.pp_replacement rp) reps)

(** Force the lazy components of a result that concurrent readers would
    otherwise race to build (forcing the same lazy from two domains is a
    runtime error in OCaml 5): the reverse indexes of every reachable
    points-to set. After this the result is read-only for queries —
    [query] and [batch] prime like [serve] does, so answering is pure
    reads whatever the job count. *)
let prime_result r =
  Hashtbl.iter (fun _ s -> Pointsto.Pts.prime s) r.Pointsto.Analysis.stmt_pts;
  Option.iter Pointsto.Pts.prime r.Pointsto.Analysis.entry_output;
  Pointsto.Invocation_graph.fold
    (fun () n ->
      Option.iter Pointsto.Pts.prime n.Pointsto.Invocation_graph.stored_input;
      Option.iter Pointsto.Pts.prime n.Pointsto.Invocation_graph.stored_output)
    () r.Pointsto.Analysis.graph

(** Summaries for demand skip-replay, from the incremental cache entry
    when both the cache and [--incremental] are on. Read-only: a demand
    result is never written back (its tables cover one slice, not the
    key's promise of the full answer). *)
let demand_seeded ~cache ~incremental prog file =
  match cache with
  | Some dir when incremental ->
      let cache_dir =
        match dir with Some d -> d | None -> Persist.default_cache_dir ()
      in
      Persist.load_summaries ~cache_dir ~source:file ~opts:Pointsto.Options.default
        prog
  | Some _ | None -> None

(** Demand-mode dispatch: one {!Alias.Demand_driver.prepare} (Andersen
    pre-pass) per file, then one sliced analysis per distinct seed
    function, memoized — queries about the same function share a primed
    result. A query whose statement id exists nowhere has no seed; it
    falls back to one (also memoized) exhaustive run so its answer —
    including the error text — matches non-demand mode exactly. *)
let demand_dispatch ?seeded prog =
  let driver = Alias.Demand_driver.prepare prog in
  let memo : (string option, Pointsto.Analysis.result) Hashtbl.t = Hashtbl.create 8 in
  fun (q : Alias.Query.t) ->
    let seed = Alias.Demand_driver.seed_of driver q in
    match Hashtbl.find_opt memo seed with
    | Some r -> r
    | None ->
        let r =
          match seed with
          | Some s -> Alias.Demand_driver.analyze ?seeded driver ~seed:s
          | None -> Pointsto.Analysis.analyze prog
        in
        prime_result r;
        Hashtbl.replace memo seed r;
        r

let cmd_query file cache incremental demand words =
  with_errors (fun () ->
      let line = String.concat " " words in
      let answer =
        if demand then begin
          let prog = load file in
          let seeded = demand_seeded ~cache ~incremental prog file in
          match Alias.Query.parse line with
          | Error _ as e -> e
          | Ok q -> Alias.Query.answer (demand_dispatch ?seeded prog q) q
        end
        else begin
          let r = analyze_file ~cache ~incremental file in
          prime_result r;
          Alias.Query.run r line
        end
      in
      match answer with
      | Ok ans -> Fmt.pr "%s@." ans
      | Error e ->
          Fmt.epr "error: %s@." e;
          exit 2)

let cmd_batch file cache incremental demand jobs queries =
  with_errors (fun () ->
      let ic, close_ic =
        match queries with
        | None | Some "-" -> (stdin, false)
        | Some f -> (
            try (open_in f, true)
            with Sys_error m ->
              Fmt.epr "error: %s@." m;
              exit 1)
      in
      let lines =
        let rec go n acc =
          match In_channel.input_line ic with
          | None -> List.rev acc
          | Some line -> go (n + 1) ((n, line) :: acc)
        in
        go 1 []
      in
      if close_ic then close_in ic;
      let todo =
        List.filter_map
          (fun (n, line) ->
            let trimmed = String.trim line in
            if trimmed = "" || trimmed.[0] = '#' then None else Some (n, trimmed))
          lines
      in
      let answers =
        if demand then begin
          (* Demand mode: one sliced analysis per distinct seed function
             (memoized by [demand_dispatch]), answered sequentially —
             queries about the same function share a slice, and slicing
             itself is the speedup, not fan-out. *)
          let prog = load file in
          let seeded = demand_seeded ~cache ~incremental prog file in
          let dispatch = demand_dispatch ?seeded prog in
          let answer (n, qline) =
            match Alias.Query.parse qline with
            | Error e -> Error (Fmt.str "line %d: error: %s" n e)
            | Ok q -> (
                match Alias.Query.answer (dispatch q) q with
                | Ok ans -> Ok (Fmt.str "%s => %s" qline ans)
                | Error e -> Error (Fmt.str "line %d: error: %s" n e))
          in
          List.map answer todo
        end
        else begin
          (* Each query is independent, so answering is a pure map over
             the one shared (primed) result; printing in input order
             afterwards keeps the output deterministic whatever the
             schedule. *)
          let r = analyze_file ~cache ~incremental file in
          prime_result r;
          let answer (n, q) =
            match Alias.Query.run r q with
            | Ok ans -> Ok (Fmt.str "%s => %s" q ans)
            | Error e -> Error (Fmt.str "line %d: error: %s" n e)
          in
          if jobs <= 1 then List.map answer todo
          else
            Pointsto.Pool.with_pool ~jobs (fun pool ->
                Pointsto.Pool.map_result pool answer todo)
            |> List.map2
                 (fun (n, _) res ->
                   match res with
                   | Ok a -> a
                   | Error e ->
                       Error (Fmt.str "line %d: error: %s" n (Printexc.to_string e)))
                 todo
        end
      in
      let failed = ref 0 in
      List.iter
        (fun a ->
          match a with
          | Ok s -> Fmt.pr "%s@." s
          | Error s ->
              incr failed;
              Fmt.pr "%s@." s)
        answers;
      if !failed > 0 then exit 2)

(** One demand-mode corpus entry of the daemon: the parsed program, the
    Andersen planning driver, optional cache summaries for skip-replay,
    and a mutex-guarded memo of primed per-seed results — filled on
    first use by whichever worker domain gets there, dropped wholesale
    on reload. [None] keys the exhaustive fallback for seedless
    queries. *)
type demand_entry = {
  de_prog : Ir.program;
  de_driver : Alias.Demand_driver.t;
  de_seeded : Pointsto.Engine.summaries option;
  de_memo : (string option, Pointsto.Analysis.result) Hashtbl.t;
  de_mu : Mutex.t;
}

(** The resident daemon: analyze (or load from cache) and prime every
    corpus file once, then answer {!Alias.Query} requests over the
    {!Pointsto.Serve} line protocol until end-of-input, [quit], or
    SIGTERM/SIGINT. Everything human-readable (startup progress, the
    ready line, shutdown stats) goes to stderr; stdout carries protocol
    replies only.

    Under [--demand], startup only parses each file and runs the cheap
    Andersen pre-pass; the expensive context-sensitive work happens per
    request, sliced to the query's seed function and memoized per
    (file, seed). *)
let cmd_serve files cache incremental demand budget jobs socket request_deadline_ms
    queue_max show_stats supervise max_restarts =
  with_errors (fun () ->
      (* Corpus load: any file that fails to analyze is a startup
         error — a daemon with a silently missing corpus entry would
         answer [error unknown file] forever. Degraded entries are fine:
         their answers are sound supersets, flagged per-reply. The
         results table is mutable so [reload]/[watch] can swap an entry
         in place (always on the event-loop domain, between batches).
         Everything from corpus load onward lives in [boot]: under
         --supervise it must run in the forked worker, not the
         supervisor, so each restarted worker loads afresh (the result
         cache makes that cheap) and the supervisor never spawns a
         domain before forking. *)
      let boot () =
      let results : (string, Pointsto.Analysis.result) Hashtbl.t = Hashtbl.create 16 in
      let dentries : (string, demand_entry) Hashtbl.t = Hashtbl.create 16 in
      let load_entry file =
        if demand then begin
          let prog = load file in
          Hashtbl.replace dentries file
            {
              de_prog = prog;
              de_driver = Alias.Demand_driver.prepare prog;
              de_seeded = demand_seeded ~cache ~incremental prog file;
              de_memo = Hashtbl.create 8;
              de_mu = Mutex.create ();
            };
          None
        end
        else begin
          let r = analyze_file ?budget ~cache ~incremental file in
          prime_result r;
          Hashtbl.replace results file r;
          Some r
        end
      in
      (* A worker answering a demand request: memo hit, else compute
         outside the lock (a racing request may duplicate the work; the
         published primed value stays unique) and publish. *)
      let demand_result (de : demand_entry) seed =
        match Mutex.protect de.de_mu (fun () -> Hashtbl.find_opt de.de_memo seed) with
        | Some r -> r
        | None ->
            let r =
              match seed with
              | Some s ->
                  Alias.Demand_driver.analyze ?seeded:de.de_seeded de.de_driver ~seed:s
              | None -> Pointsto.Analysis.analyze de.de_prog
            in
            prime_result r;
            Mutex.protect de.de_mu (fun () ->
                match Hashtbl.find_opt de.de_memo seed with
                | Some winner -> winner
                | None ->
                    Hashtbl.replace de.de_memo seed r;
                    r)
      in
      List.iter
        (fun file ->
          Fmt.epr "serve: loading %s...@." file;
          match load_entry file with
          | Some r ->
              Option.iter
                (fun d -> Fmt.epr "serve: %s %a@." file pp_degraded d)
                r.Pointsto.Analysis.degraded
          | None -> ())
        files;
      (* Name resolution: the path as given, plus its basename and
         basename-without-extension when unique across the corpus.
         Aliases map to the canonical path so a reload through any
         alias swaps the one shared entry. *)
      let by_name : (string, string option) Hashtbl.t = Hashtbl.create 16 in
      let alias name file =
        match Hashtbl.find_opt by_name name with
        | None -> Hashtbl.replace by_name name (Some file)
        | Some _ -> Hashtbl.replace by_name name None (* ambiguous *)
      in
      List.iter
        (fun file ->
          Hashtbl.replace by_name file (Some file);
          let base = Filename.basename file in
          if base <> file then alias base file;
          let stem = Filename.remove_extension base in
          if stem <> base then alias stem file)
        files;
      let resolve name =
        match Hashtbl.find_opt by_name name with Some (Some f) -> Some f | _ -> None
      in
      let handler =
        {
          Pointsto.Serve.h_files = files;
          h_answer =
            (fun ~file ~query ->
              match resolve file with
              | None ->
                  Pointsto.Serve.Ans_error
                    (Fmt.str "unknown file '%s' (try the 'files' request)" file)
              | Some f when demand -> (
                  let de = Hashtbl.find dentries f in
                  match Alias.Query.parse query with
                  | Error e -> Pointsto.Serve.Ans_error e
                  | Ok q -> (
                      let seed = Alias.Demand_driver.seed_of de.de_driver q in
                      match Alias.Query.answer (demand_result de seed) q with
                      | Error e -> Pointsto.Serve.Ans_error e
                      (* demand runs take no budget, so never degraded *)
                      | Ok ans -> Pointsto.Serve.Ans ans))
              | Some f -> (
                  let r = Hashtbl.find results f in
                  match Alias.Query.run r query with
                  | Error e -> Pointsto.Serve.Ans_error e
                  | Ok ans ->
                      if r.Pointsto.Analysis.degraded <> None then
                        Pointsto.Serve.Ans_degraded ans
                      else Pointsto.Serve.Ans ans));
          h_reload =
            Some
              (fun ~file ->
                match resolve file with
                | None -> Error (Fmt.str "unknown file '%s'" file)
                | Some f -> (
                    match load_entry f with
                    | Some r ->
                        let m = r.Pointsto.Analysis.metrics in
                        Ok
                          (Fmt.str "reloaded %s (%d dirty, %d replayed)" f
                             m.Pointsto.Metrics.incr_funcs_dirty m.incr_funcs_reused)
                    | None -> Ok (Fmt.str "reloaded %s (demand: slices reset)" f)
                    | exception e -> Error (describe_exn e)));
          h_paths = List.map (fun f -> (f, f)) files;
        }
      in
      handler
      in
      let stop = Atomic.make false in
      let on_signal _ = Atomic.set stop true in
      List.iter
        (fun s -> try Sys.set_signal s (Sys.Signal_handle on_signal) with Invalid_argument _ -> ())
        [ Sys.sigterm; Sys.sigint ];
      let run_daemon ~restarts ~journal transport =
        let handler = boot () in
        let config =
          { Pointsto.Serve.jobs; queue_max; request_deadline_ms; restarts; journal }
        in
        (match socket with
        | Some path ->
            Fmt.epr "serve: ready, %d file(s) resident, socket %s@." (List.length files)
              path
        | None -> Fmt.epr "serve: ready, %d file(s) resident, stdio@." (List.length files));
        let stats = Pointsto.Serve.run ~stop config handler transport in
        Fmt.epr
          "serve: shutdown after %d request(s): %d ok, %d degraded, %d error, %d shed, \
           %d batch(es), %d reload(s)@."
          stats.Pointsto.Serve.s_requests stats.s_ok stats.s_degraded stats.s_errors
          stats.s_shed stats.s_batches stats.s_reloads;
        if show_stats then Fmt.epr "%a@." Pointsto.Metrics.pp (Pointsto.Metrics.snapshot ())
      in
      if supervise then begin
        match socket with
        | None ->
            Fmt.epr "serve: error: --supervise requires --socket@.";
            exit 1
        | Some path ->
            let sv =
              { Pointsto.Serve.default_supervise with sv_max_restarts = max_restarts }
            in
            let journal = Some (path ^ ".journal") in
            (try Sys.remove (path ^ ".journal") with Sys_error _ -> ());
            let code =
              Pointsto.Serve.supervise ~stop sv ~socket:path (fun ~restarts fd ->
                  run_daemon ~restarts ~journal (Pointsto.Serve.Listening fd);
                  0)
            in
            (try Sys.remove (path ^ ".journal") with Sys_error _ -> ());
            if code <> 0 then exit code
      end
      else
        let transport =
          match socket with
          | Some path -> Pointsto.Serve.Socket path
          | None -> Pointsto.Serve.Stdio
        in
        run_daemon ~restarts:0 ~journal:None transport)

(** Exit code for refused generation: bad knobs, or an --out path that
    exists without --force. Shares code 2 with query failures — "the
    request itself was rejected", as opposed to code 1's "the analysis
    or input failed" (docs/CLI.md exit-code table). *)
let exit_gen_refused = 2

let cmd_gen seed size funcs depth fnptr_density recursion structs globals out force =
  let k = { Gen.seed; size; funcs; depth; fnptr_density; recursion; structs; globals } in
  match Gen.validate k with
  | Error m ->
      Fmt.epr "gen: error: %s@." m;
      exit exit_gen_refused
  | Ok () -> (
      let text = Gen.program k in
      match out with
      | None -> print_string text
      | Some path ->
          if Sys.file_exists path && not force then begin
            Fmt.epr "gen: refusing to overwrite existing '%s' (pass --force to replace it)@."
              path;
            exit exit_gen_refused
          end;
          (try
             let oc = open_out_bin path in
             Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)
           with Sys_error m ->
             Fmt.epr "gen: error: %s@." m;
             exit exit_gen_refused);
          Fmt.epr "gen: wrote %d lines to %s@."
            (String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 text)
            path)

open Cmdliner

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let no_context =
  Arg.(value & flag & info [ "no-context" ] ~doc:"Context-insensitive ablation.")

let no_definite = Arg.(value & flag & info [ "no-definite" ] ~doc:"Disable definite pairs.")

let sym_depth =
  Arg.(value & opt int 5 & info [ "sym-depth" ] ~doc:"Max symbolic-name depth.")

let show_null = Arg.(value & flag & info [ "show-null" ] ~doc:"Include NULL pairs.")

let show_stats =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print per-phase timings and engine operation counters.")

let no_share =
  Arg.(
    value & flag
    & info [ "no-share-contexts" ]
        ~doc:
          "Disable §6 sub-tree sharing (memoized IN/OUT pairs across contexts). Sharing is \
           on by default and does not change results; this exists for ablation.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Run on $(docv) domains; results and output order are identical for any $(docv).")

let heap_by_site =
  Arg.(value & flag & info [ "heap-by-site" ] ~doc:"Name heap storage by allocation site.")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Directory holding persisted analysis results (default: \
           \\$XDG_CACHE_HOME/ptan, falling back to ~/.cache/ptan).")

let no_cache =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Always re-run the analysis; neither read nor write the cache.")

let incremental_flag =
  Arg.(
    value & flag
    & info [ "incremental" ]
        ~doc:
          "Incremental re-analysis: keep a stable cache entry carrying per-function \
           content hashes and replayable summaries; after an edit, only the dirty \
           functions (edited ones plus everything that can reach them) re-analyze and \
           the rest replays — with bit-identical tables. Requires the cache (ignored \
           under --no-cache). See docs/INCREMENTAL.md.")

let no_incremental =
  Arg.(
    value & flag
    & info [ "no-incremental" ]
        ~doc:"Force full cache behavior, overriding a preceding --incremental.")

(** Combined incremental selector. *)
let incremental =
  Term.(const (fun on off -> on && not off) $ incremental_flag $ no_incremental)

let demand_flag =
  Arg.(
    value & flag
    & info [ "demand" ]
        ~doc:
          "Demand-driven mode: analyze only the invocation-graph slice the query \
           needs. The query's enclosing function seeds a slice plan — its transitive \
           callers, its own callee cone, and every call whose effect can flow into a \
           call leading to it; indirect sites expand conservatively via a \
           flow-insensitive Andersen pre-pass. Calls outside the slice replay \
           persisted summaries when available (with --incremental and the cache) and \
           apply a widened sound transfer otherwise; answers stay bit-identical to \
           the exhaustive analysis. Demand results are never written to the cache, \
           and resource budgets do not apply (no degradation path). See \
           docs/DEMAND.md.")

let no_demand =
  Arg.(
    value & flag
    & info [ "no-demand" ]
        ~doc:"Force exhaustive analysis, overriding a preceding --demand.")

(** Combined demand selector. *)
let demand = Term.(const (fun on off -> on && not off) $ demand_flag $ no_demand)

let deadline_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget per analysis, milliseconds. On exhaustion the analysis \
           degrades to the widened (context-insensitive, possible-only) rerun, which gets \
           the same allowance afresh — total wall-clock stays within about twice $(docv). \
           See docs/ROBUSTNESS.md.")

let fuel =
  Arg.(
    value & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Fixpoint-iteration budget: max iterations of any single loop-head or \
           recursive invocation-graph fixed point before degrading.")

let max_locs =
  Arg.(
    value & opt (some int) None
    & info [ "max-locs" ] ~docv:"N"
        ~doc:
          "Size ceiling before degrading: max points-to pairs in a function output and \
           max invocation-graph nodes.")

let max_heap_mb =
  Arg.(
    value & opt (some int) None
    & info [ "max-heap-mb" ] ~docv:"MB"
        ~doc:
          "Memory ceiling before degrading, megabytes of major-heap size: sampled at \
           the engine's fixpoint boundaries with a GC-alarm backstop. A blown ceiling \
           degrades to the widened rerun (exit 3) instead of an OOM kill. See \
           docs/ROBUSTNESS.md.")

(** Combined resource budget; [None] when no budget flag was given. *)
let budget =
  Term.(
    const (fun d f m h ->
        match (d, f, m, h) with
        | None, None, None, None -> None
        | _ ->
            Some
              {
                Pointsto.Guard.b_deadline_ms = d;
                b_fuel = f;
                b_max_locs = m;
                b_max_heap_mb = h;
              })
    $ deadline_ms $ fuel $ max_locs $ max_heap_mb)

let task_timeout_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "task-timeout-ms" ] ~docv:"MS"
        ~doc:
          "Per-file timeout for parallel runs, milliseconds, measured from when the \
           file's task starts: an overdue task is cooperatively cancelled and reported \
           as an error without disturbing its siblings.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record engine spans and write them to $(docv) as Chrome trace-event JSON \
           (open in Perfetto or about://tracing). See docs/OBSERVABILITY.md.")

let top =
  Arg.(
    value & opt int 15
    & info [ "top" ] ~docv:"N" ~doc:"Rows in each profile table (default 15).")

(** Combined cache selector: [None] = disabled, [Some None] = default
    directory, [Some (Some d)] = explicit directory. *)
let cache = Term.(const (fun dir off -> if off then None else Some dir) $ cache_dir $ no_cache)

let simple_cmd =
  Cmd.v (Cmd.info "simple" ~doc:"Dump the SIMPLE lowering")
    Term.(const cmd_simple $ file_arg)

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run points-to analysis")
    Term.(
      const cmd_analyze $ file_arg $ cache $ incremental $ budget $ no_context
      $ no_definite $ sym_depth $ no_share $ heap_by_site $ show_null $ show_stats
      $ trace_out)

let heap_cmd =
  Cmd.v
    (Cmd.info "heap" ~doc:"Allocation-site heap naming + connection analysis")
    Term.(const cmd_heap $ file_arg $ cache)

let constants_cmd =
  Cmd.v
    (Cmd.info "constants" ~doc:"Interprocedural constant propagation")
    Term.(const cmd_constants $ file_arg $ cache)

let ig_cmd =
  Cmd.v (Cmd.info "ig" ~doc:"Print the invocation graph")
    Term.(const cmd_ig $ file_arg $ cache)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print Tables 2-6 statistics")
    Term.(const cmd_stats $ file_arg $ cache $ incremental $ budget $ trace_out)

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"C source files to analyze.")

let tables_cmd =
  Cmd.v
    (Cmd.info "tables"
       ~doc:
         "Print Tables 2-6 statistics for many files, analyzed on -j domains in parallel; \
          with --stats, also an aggregated operation/timing table")
    Term.(
      const cmd_tables $ files_arg $ cache $ incremental $ budget $ task_timeout_ms $ jobs
      $ show_stats $ trace_out)

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Re-analyze files with the trace sink enabled and print where the time went: \
          top-N spans by cumulative/self time and fixpoint iteration histograms; \
          --trace-out additionally writes the Perfetto-loadable timeline")
    Term.(const cmd_profile $ files_arg $ budget $ task_timeout_ms $ jobs $ trace_out $ top)

let alias_cmd =
  Cmd.v
    (Cmd.info "alias" ~doc:"Print alias pairs at exit")
    Term.(const cmd_alias $ file_arg $ cache)

let callgraph_cmd =
  Cmd.v
    (Cmd.info "callgraph" ~doc:"Compare call-graph strategies")
    Term.(const cmd_callgraph $ file_arg)

let replace_cmd =
  Cmd.v
    (Cmd.info "replace" ~doc:"Pointer replacement opportunities")
    Term.(const cmd_replace $ file_arg $ cache)

let query_words =
  Arg.(
    non_empty
    & pos_right 0 string []
    & info [] ~docv:"QUERY"
        ~doc:
          "Query words, e.g. 'pts main s12 p'. See docs/CLI.md for the full query grammar.")

let query_cmd =
  Cmd.v
    (Cmd.info "query" ~doc:"Answer one demand query against the analysis result")
    Term.(const cmd_query $ file_arg $ cache $ incremental $ demand $ query_words)

let queries_file =
  Arg.(
    value
    & pos 1 (some string) None
    & info [] ~docv:"QUERIES"
        ~doc:"File of newline-delimited queries; '-' or absent reads standard input.")

let socket_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Listen on a Unix-domain socket at $(docv) instead of stdin/stdout; a stale \
           socket file is replaced at startup and the path unlinked on shutdown.")

let request_deadline_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "request-deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request wall-clock deadline (monotonic), milliseconds: a request that \
           trips it gets an error reply, the daemon and its other requests are \
           undisturbed.")

let queue_max =
  Arg.(
    value & opt int 1024
    & info [ "queue-max" ] ~docv:"N"
        ~doc:
          "Admission bound: at most $(docv) requests dispatched per batch cycle; the \
           excess is answered 'busy' immediately instead of queueing without bound.")

let supervise_flag =
  Arg.(
    value & flag
    & info [ "supervise" ]
        ~doc:
          "Self-healing mode (requires --socket): a supervisor process owns the \
           listening socket and forks the actual daemon as a worker; a crashed or \
           OOM-killed worker is restarted onto the same socket with capped exponential \
           backoff, replaying its predecessor's reloads from a journal. More than \
           --max-restarts worker deaths within 30s make the supervisor give up (exit \
           1). See docs/ROBUSTNESS.md.")

let max_restarts =
  Arg.(
    value & opt int 5
    & info [ "max-restarts" ] ~docv:"N"
        ~doc:
          "Fail-fast bound for --supervise: tolerate at most $(docv) worker deaths \
           within a 30s sliding window before giving up.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Analyze (or load) FILES once, keep the primed results resident, and answer \
          alias/pts/calls queries over a line protocol on stdin/stdout or --socket; \
          queries fan out over -j domains, each under --request-deadline-ms. See \
          docs/SERVE.md")
    Term.(
      const cmd_serve $ files_arg $ cache $ incremental $ demand $ budget $ jobs
      $ socket_path $ request_deadline_ms $ queue_max $ show_stats $ supervise_flag
      $ max_restarts)

let batch_cmd =
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Answer newline-delimited queries from a file or stdin against one loaded result")
    Term.(const cmd_batch $ file_arg $ cache $ incremental $ demand $ jobs $ queries_file)

let gen_seed =
  Arg.(
    value & opt int Gen.default.Gen.seed
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "PRNG seed. Output is byte-identical for a fixed seed and knob set, on any \
           machine — corpora are reproducible from a seed list. See docs/CORPUS.md.")

let gen_size =
  Arg.(
    value & opt int Gen.default.Gen.size
    & info [ "size" ] ~docv:"LINES"
        ~doc:
          "Target program size in lines (50..1000000): the function count grows until \
           the output reaches at least $(docv) lines. Ignored when --funcs is non-zero.")

let gen_funcs =
  Arg.(
    value & opt int Gen.default.Gen.funcs
    & info [ "funcs" ] ~docv:"N"
        ~doc:
          "Exact function count; 0 (the default) derives it from --size. A non-zero \
           count waives the size floor.")

let gen_depth =
  Arg.(
    value & opt int Gen.default.Gen.depth
    & info [ "depth" ] ~docv:"N"
        ~doc:
          "Call-DAG layers (1..32): the maximum direct-call depth below main. Function \
           pointer tables connect adjacent layers only.")

let gen_fnptr_density =
  Arg.(
    value & opt int Gen.default.Gen.fnptr_density
    & info [ "fnptr-density" ] ~docv:"PCT"
        ~doc:
          "Percent of call sites (0..100) routed through a function-pointer table load, \
           livc-style, instead of a direct call.")

let gen_recursion =
  Arg.(
    value & opt int Gen.default.Gen.recursion
    & info [ "recursion" ] ~docv:"PCT"
        ~doc:
          "Percent of functions (0..100) given a guarded self call; half that rate also \
           forms mutual-recursion pairs within a layer.")

let gen_structs =
  Arg.(
    value & opt int Gen.default.Gen.structs
    & info [ "structs" ] ~docv:"PCT"
        ~doc:
          "Percent of function bodies (0..100) doing struct/heap/array work: malloc'd \
           list nodes, field stores, array walks.")

let gen_globals =
  Arg.(
    value & opt int Gen.default.Gen.globals
    & info [ "globals" ] ~docv:"PCT"
        ~doc:
          "Percent of pointer traffic (0..100) aimed at globals rather than function \
           locals.")

let gen_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:
          "Write the program to $(docv) instead of standard output. Refuses to overwrite \
           an existing file unless --force is given (exit 2).")

let gen_force =
  Arg.(
    value & flag
    & info [ "force" ] ~doc:"Allow --out to replace an existing file.")

let gen_cmd =
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Emit a deterministic synthetic C program for scale testing: a layered call \
          DAG with function-pointer tables, optional recursion cycles and \
          struct/heap/array traffic, sized by --size (10k-100k lines is the intended \
          range). Byte-identical output per --seed; see docs/CORPUS.md")
    Term.(
      const cmd_gen $ gen_seed $ gen_size $ gen_funcs $ gen_depth $ gen_fnptr_density
      $ gen_recursion $ gen_structs $ gen_globals $ gen_out $ gen_force)

let () =
  let info = Cmd.info "ptan" ~doc:"Context-sensitive interprocedural points-to analysis" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            simple_cmd;
            analyze_cmd;
            ig_cmd;
            stats_cmd;
            tables_cmd;
            profile_cmd;
            alias_cmd;
            callgraph_cmd;
            replace_cmd;
            heap_cmd;
            constants_cmd;
            query_cmd;
            batch_cmd;
            serve_cmd;
            gen_cmd;
          ]))
