(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (§6) on the synthetic benchmark suite, prints each next to
    the paper's numbers, runs the ablation studies from DESIGN.md, and
    measures analysis time per benchmark with Bechamel.

    Run with [dune exec bench/main.exe]. Sections: Table 2, Table 3,
    Table 4, Table 5, Table 6, Figure 2, Figures 6-7, Figures 8-9, the
    livc function-pointer study, overall averages, ablations, timings. *)

module Ir = Simple_ir.Ir
module Stats = Pointsto.Stats
module Analysis = Pointsto.Analysis
module Ig = Pointsto.Invocation_graph
module Loc = Pointsto.Loc
module Pts = Pointsto.Pts

let bench_dir =
  if Sys.file_exists "benchmarks" then "benchmarks"
  else if Sys.file_exists "../benchmarks" then "../benchmarks"
  else Fmt.failwith "cannot find the benchmarks directory (run from the repo root)"

let path name = Filename.concat bench_dir (name ^ ".c")

let count_lines file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> ());
      !n)

let progs : (string, Ir.program) Hashtbl.t = Hashtbl.create 18
let results : (string, Analysis.result) Hashtbl.t = Hashtbl.create 18

let prog name =
  match Hashtbl.find_opt progs name with
  | Some p -> p
  | None ->
      let p = Simple_ir.Simplify.of_file (path name) in
      Hashtbl.replace progs name p;
      p

let result name =
  match Hashtbl.find_opt results name with
  | Some r -> r
  | None ->
      let r = Analysis.analyze (prog name) in
      Hashtbl.replace results name r;
      r

let section title = Fmt.pr "@.=== %s ===@.@." title

let hr = String.make 78 '-'

(* ------------------------------------------------------------------ *)
(* Tables                                                             *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2: Characteristics of Benchmark Programs (ours | paper)";
  Fmt.pr "%-10s %15s %17s %13s %13s@." "Benchmark" "Lines|ppr" "stmts|ppr" "Min|ppr"
    "Max|ppr";
  Fmt.pr "%s@." hr;
  List.iter
    (fun (name, (p : Paper_data.t2)) ->
      let r = result name in
      let c = Stats.characteristics r in
      Fmt.pr "%-10s %6d | %-6d %6d | %-6d %4d | %-4d %4d | %-4d@." name
        (count_lines (path name))
        p.Paper_data.lines c.Stats.c_stmts p.Paper_data.stmts c.Stats.c_min_vars
        p.Paper_data.min_vars c.Stats.c_max_vars p.Paper_data.max_vars)
    Paper_data.table2

let table3 () =
  section "Table 3: Points-to Statistics for Indirect References (ours | paper)";
  Fmt.pr "%-10s %11s %11s %5s %4s %4s %10s %9s %11s %11s %11s@." "Benchmark" "1D s/a"
    "1P s/a" "2P" "3P" "4+P" "refs" "rep" "stack" "heap" "avg";
  Fmt.pr "%s@." hr;
  List.iter
    (fun (name, (p : Paper_data.t3)) ->
      let i = Stats.indirect_stats (result name) in
      Fmt.pr
        "%-10s %5d/%-5d %5d/%-5d %5d %4d %4d %4d|%-4d %4d|%-4d %5d|%-5d %4d|%-4d %.2f|%.2f@."
        name i.Stats.one_d.Stats.scalar i.Stats.one_d.Stats.array i.Stats.one_p.Stats.scalar
        i.Stats.one_p.Stats.array
        (Stats.pair_total i.Stats.two_p)
        (Stats.pair_total i.Stats.three_p)
        (Stats.pair_total i.Stats.four_plus_p)
        i.Stats.ind_refs p.Paper_data.ind_refs i.Stats.scalar_rep p.Paper_data.scalar_rep
        i.Stats.to_stack p.Paper_data.to_stack i.Stats.to_heap p.Paper_data.to_heap
        i.Stats.avg p.Paper_data.avg)
    Paper_data.table3

let table4 () =
  section "Table 4: Categorization of Points-to Information Used by Indirect References";
  Fmt.pr "%-10s | %6s %6s %6s %6s | %6s %6s %6s %6s@." "Benchmark" "fr-lo" "fr-gl" "fr-fp"
    "fr-sy" "to-lo" "to-gl" "to-fp" "to-sy";
  Fmt.pr "%s@." hr;
  List.iter
    (fun name ->
      let c = Stats.categorize (result name) in
      Fmt.pr "%-10s | %6d %6d %6d %6d | %6d %6d %6d %6d@." name c.Stats.from_lo
        c.Stats.from_gl c.Stats.from_fp c.Stats.from_sy c.Stats.to_lo c.Stats.to_gl
        c.Stats.to_fp c.Stats.to_sy)
    Paper_data.names;
  Fmt.pr
    "@.(Paper's Table 4 shape: most pairs run from formal parameters to globals and@.\
     symbolic names -- procedure calls generate the majority of relationships, so@.\
     the analysis must be context-sensitive.)@."

let table5 () =
  section "Table 5: General Points-to Statistics (ours | paper)";
  Fmt.pr "%-10s %15s %15s %13s %13s %11s %11s@." "Benchmark" "S->S" "S->H" "H->H" "H->S"
    "Avg" "Max";
  Fmt.pr "%s@." hr;
  List.iter
    (fun (name, (p : Paper_data.t5)) ->
      let g = Stats.general (result name) in
      Fmt.pr "%-10s %6d | %6d %6d | %6d %5d | %5d %5d | %5d %4.0f | %4d %4d | %4d@." name
        g.Stats.stack_to_stack p.Paper_data.ss g.Stats.stack_to_heap p.Paper_data.sh
        g.Stats.heap_to_heap p.Paper_data.hh g.Stats.heap_to_stack p.Paper_data.hs
        g.Stats.avg_per_stmt p.Paper_data.avg g.Stats.max_per_stmt p.Paper_data.max)
    Paper_data.table5;
  let hs_total =
    List.fold_left
      (fun acc name -> acc + (Stats.general (result name)).Stats.heap_to_stack)
      0 Paper_data.names
  in
  Fmt.pr "@.Heap-to-stack pairs across the whole suite: %d (paper: 0 -- the key@." hs_total;
  Fmt.pr "observation supporting the separation of stack and heap analyses).@."

let table6 () =
  section "Table 6: Invocation Graph Statistics (ours | paper)";
  Fmt.pr "%-10s %13s %13s %11s %9s %9s %13s %13s@." "Benchmark" "nodes" "sites" "funcs" "R"
    "A" "Avgc" "Avgf";
  Fmt.pr "%s@." hr;
  List.iter
    (fun (name, (p : Paper_data.t6)) ->
      let s = Stats.ig_stats (result name) in
      Fmt.pr
        "%-10s %5d | %5d %5d | %5d %4d | %4d %3d | %3d %3d | %3d %5.2f | %5.2f %5.2f | %5.2f@."
        name s.Stats.ig_nodes p.Paper_data.nodes s.Stats.call_sites p.Paper_data.sites
        s.Stats.n_funcs p.Paper_data.funcs s.Stats.n_recursive p.Paper_data.r
        s.Stats.n_approximate p.Paper_data.a s.Stats.avg_per_call_site p.Paper_data.avgc
        s.Stats.avg_per_func p.Paper_data.avgf)
    Paper_data.table6

(* ------------------------------------------------------------------ *)
(* Figures                                                            *)
(* ------------------------------------------------------------------ *)

let figure2 () =
  section "Figure 2: Invocation Graphs";
  let show title src =
    let r = Analysis.of_string src in
    Fmt.pr "%s:@.%a@." title Ig.pp r.Analysis.graph
  in
  show "(a) no recursion"
    {|void f(void) {}
      void g(void) { f(); }
      int main() { g(); g(); f(); return 0; }|};
  show "(b) simple recursion"
    {|void f(int n) { if (n) f(n - 1); }
      int main() { f(3); return 0; }|};
  show "(c) simple and mutual recursion"
    {|void h(int n);
      void g(int n) { if (n) h(n - 1); }
      void h(int n) { if (n > 1) { h(n - 1); } else { g(n); } }
      void f(int n) { g(n); if (n) f(n - 1); }
      int main() { f(3); return 0; }|}

let figures67 () =
  section "Figures 6-7: Function Pointer Example";
  let src =
    {|int a,b,c;
      int *pa,*pb,*pc;
      int (*fp)();
      int foo(); int bar();
      void probeA(void); void probeB(void); void probeC(void); void probeD(void);
      int main() {
        int cond;
        pc = &c;
        if (cond) fp = foo; else fp = bar;
        probeA();
        fp();
        probeB();
        return 0;
      }
      int foo() { pa = &a; if (c) { fp(); } probeC(); return 0; }
      int bar() { pb = &b; probeD(); return 0; }|}
  in
  let r = Analysis.of_string src in
  let show_probe label probe =
    let sid =
      Ir.fold_program
        (fun acc s ->
          match s.Ir.s_desc with
          | Ir.Scall (_, Ir.Cdirect f, _) when String.equal f probe -> Some s.Ir.s_id
          | _ -> acc)
        None r.Analysis.prog
    in
    match sid with
    | None -> ()
    | Some sid ->
        let pts = Analysis.pts_at_no_null r sid in
        let pts =
          Pts.filter (fun src _ _ -> match src with Loc.Var _ -> true | _ -> false) pts
        in
        Fmt.pr "%s@.  ours: %a@." label Pts.pp pts
  in
  show_probe "A (paper: (fp,foo,P) (fp,bar,P) (pc,c,D))" "probeA";
  show_probe "B (paper: A + (pa,a,P) (pb,b,P))" "probeB";
  show_probe "C (paper: (fp,foo,D) (pc,c,D) (pa,a,D))" "probeC";
  show_probe "D (paper: (fp,bar,D) (pc,c,D) (pb,b,D))" "probeD";
  Fmt.pr
    "@.Final invocation graph (paper Figure 7(c): the call to foo through fp@.\
     inside foo becomes recursive):@.%a@."
    Ig.pp r.Analysis.graph

let figures89 () =
  section "Figures 8-9: Points-to Pairs vs Alias Pairs";
  let show title src note =
    let r = Analysis.of_string src in
    match r.Analysis.entry_output with
    | None -> ()
    | Some s ->
        let s = Pts.filter (fun _ t _ -> not (Loc.is_null t)) s in
        Fmt.pr "%s@.  points-to: %a@.  implied alias pairs: %a@.  %s@.@." title Pts.pp s
          Alias.Pairs.pp (Alias.Pairs.of_pts s) note
  in
  show "Figure 8 (after S3: x = &y; y = &z; y = &w;)"
    {|int main() { int **x, *y, z, w; x = &y; y = &z; y = &w; return 0; }|}
    "(no spurious <**x,z>: the stale alias the pair representation reports is absent)";
  show "Figure 9 (after the if: a = &b / b = &c on different branches)"
    {|int main() { int **a, *b, c; int cond;
       if (cond) a = &b; else b = &c;
       return 0; }|}
    "(the closure derives the spurious <**a,c>, which Landi/Ryder avoid -- the\n\
    \  trade-off the paper discusses)"

let livc_study () =
  section "livc: Call-Graph Strategies for Function Pointers (paper section 6)";
  let p = prog "livc" in
  let pp_paper, pn_paper, pa_paper = Paper_data.livc_paper in
  let fp_paper, fn_paper, fa_paper = Paper_data.livc_fanout_paper in
  let fanout1 s =
    match Alias.Callgraph.indirect_fanout p s with n :: _ -> n | [] -> 0
  in
  let row strategy s paper_nodes paper_fanout =
    Fmt.pr "%-28s %6d | %-6d %6d | %-6d@." strategy (Alias.Callgraph.ig_size p s)
      paper_nodes (fanout1 s) paper_fanout
  in
  Fmt.pr "%-28s %15s %15s@." "strategy" "IG nodes|paper" "fanout|paper";
  Fmt.pr "%s@." hr;
  row "points-to (precise)" Alias.Callgraph.Precise pp_paper fp_paper;
  row "all functions (naive)" Alias.Callgraph.Naive pn_paper fn_paper;
  row "address-taken" Alias.Callgraph.Address_taken pa_paper fa_paper;
  Fmt.pr
    "@.(Shape to reproduce: the precise strategy binds exactly the 24 functions of@.\
     each table to its call site; both approximations blow the graph up.)@."

let overall () =
  section "Overall Averages (paper section 6)";
  let tp, tr, td, trep, tone =
    List.fold_left
      (fun (tp, tr, td, trep, tone) name ->
        let i = Stats.indirect_stats (result name) in
        ( tp + i.Stats.total_pairs,
          tr + i.Stats.ind_refs,
          td + Stats.pair_total i.Stats.one_d,
          trep + i.Stats.scalar_rep,
          tone + Stats.pair_total i.Stats.one_d + Stats.pair_total i.Stats.one_p ))
      (0, 0, 0, 0, 0) Paper_data.names
  in
  let pct a b = 100.0 *. float_of_int a /. float_of_int b in
  Fmt.pr "avg locations per indirect reference:   %.2f   (paper: %.2f; Landi et al.: 1.2)@."
    (float_of_int tp /. float_of_int tr)
    Paper_data.overall_avg;
  Fmt.pr "refs with a single definite target:     %.1f%%  (paper: %.1f%%)@." (pct td tr)
    Paper_data.overall_definite_pct;
  Fmt.pr "refs replaceable by direct references:  %.1f%%  (paper: %.1f%%)@." (pct trep tr)
    Paper_data.overall_replaceable_pct;
  Fmt.pr "refs with at most one non-NULL target:  %.1f%%  (paper: %.1f%%)@." (pct tone tr)
    Paper_data.overall_single_pct

(* ------------------------------------------------------------------ *)
(* Ablations                                                          *)
(* ------------------------------------------------------------------ *)

let suite_stats opts =
  List.fold_left
    (fun (tp, tr, td, t5) name ->
      let r = Analysis.analyze ~opts (prog name) in
      let i = Stats.indirect_stats r in
      let g = Stats.general r in
      ( tp + i.Stats.total_pairs,
        tr + i.Stats.ind_refs,
        td + Stats.pair_total i.Stats.one_d,
        t5 + g.Stats.stack_to_stack + g.Stats.stack_to_heap + g.Stats.heap_to_heap
        + g.Stats.heap_to_stack ))
    (0, 0, 0, 0) Paper_data.names

let ablations () =
  section "Ablations (DESIGN.md ABL1-ABL4)";
  let show label opts =
    let tp, tr, td, t5 = suite_stats opts in
    Fmt.pr "  %-36s avg %.2f, definite refs %4.1f%%, total pairs %d@." label
      (float_of_int tp /. float_of_int tr)
      (100.0 *. float_of_int td /. float_of_int tr)
      t5
  in
  let dflt = Pointsto.Options.default in
  Fmt.pr "ABL1 definite information:@.";
  show "with definite pairs (paper):" dflt;
  show "without (weak updates only):"
    { dflt with Pointsto.Options.use_definite = false };
  Fmt.pr "@.ABL2 context sensitivity:@.";
  show "context-sensitive (paper):" dflt;
  show "context-insensitive (merged IN/OUT):"
    { dflt with Pointsto.Options.context_sensitive = false };
  Fmt.pr "@.ABL3 symbolic-name depth bound:@.";
  List.iter
    (fun d ->
      show
        (Fmt.str "max_sym_depth = %d:" d)
        { dflt with Pointsto.Options.max_sym_depth = d })
    [ 1; 2; 5; 8 ];
  Fmt.pr "@.ABL4 flow-insensitive baselines (avg targets per pointer with any):@.";
  let st, an =
    List.fold_left
      (fun (st, an) name ->
        let p = prog name in
        ( st +. Alias.Steensgaard.avg_targets (Alias.Steensgaard.run p),
          an +. Alias.Andersen.avg_targets (Alias.Andersen.run p) ))
      (0., 0.) Paper_data.names
  in
  let n = float_of_int (List.length Paper_data.names) in
  Fmt.pr "  Steensgaard (unification):           %.2f@." (st /. n);
  Fmt.pr "  Andersen (inclusion):                %.2f@." (an /. n);
  let tp, tr, _, _ = suite_stats dflt in
  Fmt.pr "  this paper (context-sensitive):      %.2f@."
    (float_of_int tp /. float_of_int tr)

(* ------------------------------------------------------------------ *)
(* Extensions (the paper's stated future work)                        *)
(* ------------------------------------------------------------------ *)

let extensions () =
  section "Extensions: sub-tree sharing, heap connection analysis, constants";
  (* section 6: "we plan to reduce its size by ... caching or memoizing
     the input and output points-to information for each function" *)
  Fmt.pr "Sub-tree sharing (paper section 6 proposal): function-body passes@.";
  Fmt.pr "%-12s %14s %14s %8s@." "benchmark" "without" "with sharing" "hits";
  List.iter
    (fun name ->
      let p = prog name in
      (* share_contexts is on by default; the "without" column must turn it
         off explicitly. *)
      let off =
        Analysis.analyze
          ~opts:
            { Pointsto.Options.default with Pointsto.Options.share_contexts = false }
          p
      in
      let on = Analysis.analyze p in
      if on.Analysis.share_hits > 0 then
        Fmt.pr "%-12s %14d %14d %8d@." name off.Analysis.bodies_analyzed
          on.Analysis.bodies_analyzed on.Analysis.share_hits)
    (Paper_data.names @ [ "livc" ]);
  (* section 8: companion heap analysis *)
  Fmt.pr
    "@.Connection analysis over allocation-site-named heap (paper section 8,@.\
     the companion analyses of [Ghiya 93]):@.";
  Fmt.pr "%-12s %8s %12s %10s %12s@." "benchmark" "sites" "heap ptrs" "pairs" "disjoint";
  List.iter
    (fun name ->
      let module C = Heap_analysis.Connection in
      let r = Analysis.analyze ~opts:C.options (prog name) in
      let s = C.summarize r in
      if s.C.n_sites > 0 then
        Fmt.pr "%-12s %8d %12d %10d %12d@." name s.C.n_sites s.C.n_heap_ptrs s.C.n_pairs
          s.C.n_disjoint)
    Paper_data.names;
  (* section 6.1: follow-on interprocedural analyses over deposited info *)
  Fmt.pr
    "@.Interprocedural constant propagation over the invocation graph and@.\
     deposited map information (paper section 6.1, [Hendren et al. 93]):@.";
  Fmt.pr "%-12s %26s@." "benchmark" "constant operand reads";
  List.iter
    (fun name ->
      let r = result name in
      let cp = Constprop.run r in
      let n = List.length (Constprop.fold_sites cp) in
      Fmt.pr "%-12s %26d@." name n)
    Paper_data.names

(* ------------------------------------------------------------------ *)
(* Persisted results: cold analyze vs warm load + demand queries      *)
(* ------------------------------------------------------------------ *)

module Persist = Pointsto.Persist

(** One string summarizing the Table 3-5 rows of a result; the
    analyze-once/query-many contract is that a loaded result reproduces
    it bit-identically. *)
let table345_rows r =
  let i = Stats.indirect_stats r in
  let c = Stats.categorize r in
  let g = Stats.general r in
  Fmt.str "%d %d %d %d %.2f | %d %d %d %d %d %d %d %d | %d %d %d %d %.1f %d" i.Stats.ind_refs
    i.Stats.scalar_rep i.Stats.to_stack i.Stats.to_heap i.Stats.avg c.Stats.from_lo
    c.Stats.from_gl c.Stats.from_fp c.Stats.from_sy c.Stats.to_lo c.Stats.to_gl c.Stats.to_fp
    c.Stats.to_sy g.Stats.stack_to_stack g.Stats.stack_to_heap g.Stats.heap_to_heap
    g.Stats.heap_to_stack g.Stats.avg_per_stmt g.Stats.max_per_stmt

(** A program-derived query workload: every variable of every function
    probed at the function's first and last statement, plus one [calls]
    query per call site. *)
let gen_queries (r : Analysis.result) =
  let qs = ref [] in
  let add q = qs := q :: !qs in
  List.iter
    (fun (fn : Ir.func) ->
      let ids = List.rev (Ir.fold_func (fun acc s -> s.Ir.s_id :: acc) [] fn) in
      (match ids with
      | [] -> ()
      | first :: rest ->
          let last = List.fold_left (fun _ id -> id) first rest in
          List.iter
            (fun (v, _) ->
              add (Fmt.str "pts %s s%d %s" fn.Ir.fn_name first v);
              if last <> first then add (Fmt.str "pts %s s%d %s" fn.Ir.fn_name last v))
            (fn.Ir.fn_params @ fn.Ir.fn_locals));
      Ir.fold_func
        (fun () s ->
          match s.Ir.s_desc with
          | Ir.Scall _ -> add (Fmt.str "calls s%d" s.Ir.s_id)
          | _ -> ())
        () fn)
    r.Analysis.prog.Ir.funcs;
  List.rev !qs

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1e3)

let persistence () =
  section "Persisted Results: cold analyze+save vs warm load, then demand queries";
  let dir = Filename.temp_file "ptan-bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      Fmt.pr "%-12s %10s %10s %9s %6s %8s %10s@." "benchmark" "cold ms" "warm ms" "speedup"
        "ident" "queries" "queries/s";
      Fmt.pr "%s@." hr;
      let livc_detail = ref None in
      List.iter
        (fun name ->
          let source = path name in
          let (cold, cold_hit), t_cold =
            time (fun () -> Persist.analyze_cached ~cache_dir:dir source)
          in
          (* min of a few hits: the first warm call tends to absorb the GC
             debt of the cold analyze, which is not load cost *)
          let warm_runs =
            List.init 5 (fun _ -> time (fun () -> Persist.analyze_cached ~cache_dir:dir source))
          in
          let (warm, warm_hit), _ = List.hd warm_runs in
          let t_warm =
            List.fold_left (fun acc (_, t) -> Float.min acc t) Float.infinity warm_runs
          in
          if cold_hit || not warm_hit then
            Fmt.failwith "%s: cache behaved unexpectedly (cold hit %b, warm hit %b)" name
              cold_hit warm_hit;
          let ident = String.equal (table345_rows cold) (table345_rows warm) in
          let qs = gen_queries warm in
          let n = List.length qs in
          let (), t_q =
            time (fun () -> List.iter (fun q -> ignore (Alias.Query.run warm q)) qs)
          in
          let qps = if t_q > 0. then float_of_int n /. t_q *. 1e3 else Float.infinity in
          Fmt.pr "%-12s %10.2f %10.2f %8.1fx %6s %8d %10.0f@." name t_cold t_warm
            (t_cold /. t_warm)
            (if ident then "yes" else "NO")
            n qps;
          if String.equal name "livc" then livc_detail := Some (cold, warm))
        (Paper_data.names @ [ "livc" ]);
      (match !livc_detail with
      | None -> ()
      | Some (cold, warm) ->
          let module M = Pointsto.Metrics in
          let mc = cold.Analysis.metrics and mw = warm.Analysis.metrics in
          Fmt.pr
            "@.livc cache detail: %d hit(s), %d miss(es); serialize %.3f ms, deserialize \
             %.3f ms@."
            mw.M.cache_hits mc.M.cache_misses (mc.M.t_serialize *. 1e3)
            (mw.M.t_deserialize *. 1e3));
      Fmt.pr
        "(cold = full fixpoint + save; warm = load from the result cache; the@.\
         acceptance bar is warm at least 10x faster than cold on livc)@.")

(* ------------------------------------------------------------------ *)
(* Engine cost counters                                               *)
(* ------------------------------------------------------------------ *)

let counters () =
  section "Engine Counters (per-phase work of one default analysis run)";
  Fmt.pr "%-12s %7s %6s %6s %8s %8s %7s %7s %7s@." "benchmark" "bodies" "loop" "rec"
    "assigns" "merges" "fast%" "eq-fst%" "memo%";
  Fmt.pr "%s@." hr;
  let module M = Pointsto.Metrics in
  List.iter
    (fun name ->
      let m = (result name).Analysis.metrics in
      (* memo hit rate comes from a share-contexts run of the same program *)
      let shared =
        Analysis.analyze
          ~opts:{ Pointsto.Options.default with Pointsto.Options.share_contexts = true }
          (prog name)
      in
      let ms = shared.Analysis.metrics in
      Fmt.pr "%-12s %7d %6d %6d %8d %8d %6.1f%% %6.1f%% %6.1f%%@." name m.M.bodies
        m.M.loop_iters m.M.rec_iters m.M.assigns m.M.merges
        (M.ratio m.M.merge_fast m.M.merges)
        (M.ratio m.M.equal_fast m.M.equal_checks)
        (M.ratio ms.M.memo_hits ms.M.memo_lookups))
    (Paper_data.names @ [ "livc" ]);
  let m = (result "livc").Analysis.metrics in
  Fmt.pr "@.livc detail:@.%a@." M.pp m;
  Fmt.pr "interned locations: %d@." (Loc.interned_count ())

(* ------------------------------------------------------------------ *)
(* Parallel suite analysis                                            *)
(* ------------------------------------------------------------------ *)

module Pool = Pointsto.Pool

(** Digest covering the Table 3-6 rows, the invocation-graph shape and
    every per-statement points-to set of a result. The parallel-driver
    contract is that any [-j] reproduces it bit-identically. *)
let result_digest r =
  let stmts =
    Hashtbl.fold (fun id s acc -> (id, s) :: acc) r.Analysis.stmt_pts []
    |> List.sort compare
    |> List.map (fun (id, s) -> Fmt.str "s%d:%a" id Pts.pp s)
    |> String.concat "\n"
  in
  let ig = Stats.ig_stats r in
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [
            table345_rows r;
            Fmt.str "%d %d %d %d %d" ig.Stats.ig_nodes ig.Stats.call_sites ig.Stats.n_funcs
              ig.Stats.n_recursive ig.Stats.n_approximate;
            stmts;
          ]))

(* ------------------------------------------------------------------ *)
(* Trace layer                                                        *)
(* ------------------------------------------------------------------ *)

module Trace = Pointsto.Trace

(** The trace layer's acceptance bars: results bit-identical with the
    sink enabled, and a disabled sink cheap enough that the instrumented
    hot paths cost at most 3% of the analysis time. *)
let tracing () =
  section "Trace Layer: span volume, export size, disabled-sink overhead (livc)";
  let p = prog "livc" in
  let off = Analysis.analyze p in
  Trace.enable ();
  Trace.clear ();
  let on_r, t_on = time (fun () -> Analysis.analyze p) in
  Trace.disable ();
  let spans = Trace.collect () in
  if not (String.equal (result_digest off) (result_digest on_r)) then
    failwith "tracing: enabled-sink result differs from disabled-sink result";
  Fmt.pr "enabled-sink run: bit-identical result in %.3f ms@." t_on;
  let per_kind = Hashtbl.create 9 in
  List.iter
    (fun s ->
      let k = Trace.kind_name s.Trace.sp_kind in
      Hashtbl.replace per_kind k
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_kind k)))
    spans;
  Fmt.pr "spans: %d (%s)@.JSON export: %d bytes; root-span coverage %.1f%%@."
    (List.length spans)
    (Hashtbl.fold (fun k n acc -> Fmt.str "%s %d" k n :: acc) per_kind []
    |> List.sort compare |> String.concat ", ")
    (String.length (Trace.json_string spans))
    (100. *. Trace.coverage spans);
  (* cost of one disabled instrumentation site (a start/emit pair),
     multiplied by the sites the enabled run actually hit: that product
     is the whole overhead tracing leaves in a default run *)
  let n = 10_000_000 in
  let (), t_ms =
    time (fun () ->
        for _ = 1 to n do
          let t0 = Trace.start () in
          if Trace.on () then Trace.emit Trace.Node ~name:"x" ~t0 ()
        done)
  in
  let ns_per_site = t_ms *. 1e6 /. float_of_int n in
  let t_analysis = off.Analysis.metrics.Pointsto.Metrics.t_analysis *. 1e3 in
  let overhead_ms = float_of_int (List.length spans) *. ns_per_site /. 1e6 in
  Fmt.pr "disabled sink: %.2f ns/site; %d sites => %.4f ms vs %.3f ms analysis (%.2f%%)@."
    ns_per_site (List.length spans) overhead_ms t_analysis
    (100. *. overhead_ms /. t_analysis);
  if overhead_ms > 0.03 *. t_analysis then
    failwith "tracing: disabled-sink overhead exceeds 3% of the analysis time"

(* ------------------------------------------------------------------ *)
(* Degradation under budgets                                          *)
(* ------------------------------------------------------------------ *)

module Guard = Pointsto.Guard

(** One unit of fixpoint fuel trips on the second iteration of any
    loop or recursive body, so every benchmark with non-trivial control
    flow is forced through the widened rerun. A tiny deadline would not
    do: it would also starve the rerun itself. *)
let degradation_budget = { Guard.no_budget with Guard.b_fuel = Some 1 }

(** Every (statement, source, target) pair of a result — per-statement
    sets plus the entry output (statement [-1]) — with certainty
    erased. The soundness contract of degradation is containment of
    the full-precision run's pairs in the degraded run's. *)
let result_pairs (r : Analysis.result) =
  let h = Hashtbl.create 1024 in
  let add_set sid s = Pts.iter (fun src dst _ -> Hashtbl.replace h (sid, Loc.id src, Loc.id dst) ()) s in
  Hashtbl.iter (fun id s -> add_set id s) r.Analysis.stmt_pts;
  (match r.Analysis.entry_output with Some o -> add_set (-1) o | None -> ());
  h

let pairs_superset ~full ~degraded =
  Hashtbl.fold (fun k () acc -> acc && Hashtbl.mem degraded k) full true

let degradation () =
  section "Degradation (fuel 1: every trip unwinds to the widened context-insensitive rerun)";
  Fmt.pr "%-12s %10s %11s %8s %7s %7s %7s %9s@." "benchmark" "full ms" "budget ms" "trip"
    "pairs" "pairs'" "delta" "superset";
  Fmt.pr "%s@." hr;
  let tripped = ref 0 in
  List.iter
    (fun name ->
      let p = prog name in
      let full, t_full = time (fun () -> Analysis.analyze p) in
      let deg, t_deg = time (fun () -> Analysis.analyze ~budget:degradation_budget p) in
      let trip =
        match deg.Analysis.degraded with
        | Some d ->
            incr tripped;
            Guard.reason_name d.Analysis.deg_trip.Guard.t_reason
        | None -> "-"
      in
      let fp = result_pairs full and dp = result_pairs deg in
      let nf = Hashtbl.length fp and nd = Hashtbl.length dp in
      if not (pairs_superset ~full:fp ~degraded:dp) then
        Fmt.failwith "degradation: %s lost points-to pairs (unsound widening)" name;
      Fmt.pr "%-12s %10.2f %11.2f %8s %7d %7d %+7d %9s@." name t_full t_deg trip nf nd
        (nd - nf) "yes")
    (Paper_data.names @ [ "livc" ]);
  Fmt.pr
    "@.%d/%d benchmarks tripped the fuel budget; every degraded table is a@.\
     pair-containment superset of the full-precision one (certainty erased),@.\
     i.e. budget exhaustion trades precision, never soundness.@."
    !tripped
    (List.length Paper_data.names + 1);
  if !tripped = 0 then failwith "degradation: no benchmark tripped under fuel 1"

(** Analyze the whole suite on a pool of [jobs] domains; returns the
    named results (in suite order) and the wall-clock milliseconds. *)
let suite_on_pool parsed jobs =
  Pool.with_pool ~jobs (fun pool ->
      time (fun () ->
          Pool.map_result pool (fun (name, p) -> (name, Analysis.analyze p)) parsed
          |> List.map (function
               | Ok r -> r
               | Error e -> failwith ("suite analysis failed: " ^ Printexc.to_string e))))

let parallel_suite jobs_list =
  section "Parallel Suite (domain pool over the whole benchmark suite)";
  let names = Paper_data.names @ [ "livc" ] in
  (* parse up front so the walls below time only analysis work *)
  let parsed = List.map (fun name -> (name, prog name)) names in
  let baseline, t1 = suite_on_pool parsed 1 in
  let base_digests = List.map (fun (_, r) -> result_digest r) baseline in
  Fmt.pr "%d programs, %d core(s) recommended by the runtime@.@." (List.length names)
    (Domain.recommended_domain_count ());
  Fmt.pr "%-8s %12s %10s %12s@." "jobs" "wall ms" "speedup" "identical";
  Fmt.pr "%s@." hr;
  Fmt.pr "%-8d %12.1f %10s %12s@." 1 t1 "1.00x" "-";
  List.iter
    (fun jobs ->
      let rs, t = suite_on_pool parsed jobs in
      let ident = List.for_all2 (fun (_, r) d -> String.equal (result_digest r) d) rs base_digests in
      if not ident then Fmt.failwith "parallel suite: -j %d diverged from -j 1" jobs;
      Fmt.pr "%-8d %12.1f %9.2fx %12s@." jobs t (t1 /. t) "yes")
    jobs_list;
  let module M = Pointsto.Metrics in
  let agg = M.sum (List.map (fun (_, r) -> r.Analysis.metrics) baseline) in
  Fmt.pr "@.sub-tree sharing memo (hash-indexed, on by default): %d lookups, %d hits (%.1f%%)@."
    agg.M.memo_lookups agg.M.memo_hits
    (M.ratio agg.M.memo_hits agg.M.memo_lookups);
  Fmt.pr "(speedup is bounded by the cores available to the runtime)@."

(** [-j N] on the command line narrows the parallel section (and the
    smoke check) to that one pool width. *)
let argv_jobs () =
  let rec go i =
    if i + 1 >= Array.length Sys.argv then None
    else if String.equal Sys.argv.(i) "-j" then int_of_string_opt Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Incremental re-analysis: edit, diff hashes, replay the clean part  *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "ptan-incr" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let read_file p = In_channel.with_open_bin p In_channel.input_all

let write_file p s = Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc s)

let replace_once ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then Fmt.failwith "edit anchor %S not found" sub
    else if String.equal (String.sub s i m) sub then
      String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)
    else go (i + 1)
  in
  go 0

type incr_row = {
  ir_name : string;
  ir_edit : string;  (** "comment" or "kernel" *)
  ir_funcs : int;
  ir_dirty : int;
  ir_reused : int;
  ir_t_cold : float;
      (** the pre-existing cache trajectory on the edited source — a
          full miss through [analyze_cached] without [incremental], so
          fixpoint plus save, ms. This is what the [--incremental] flag
          replaces. *)
  ir_t_nocache : float;  (** bare fixpoint ([Analysis.of_file]), ms *)
  ir_t_incr : float;  (** incremental re-analysis of the same edit, ms *)
  ir_ident : bool;  (** result_digest equality against the bare fixpoint *)
}

(** Populate the incremental cache for a private copy of [name], apply
    [edit] to the copy, then race the non-incremental cache trajectory
    against the incremental re-analysis of the same edit. All sides are
    timed as the min over [incr_repeats] runs — the pre-edit cache entry
    is restored (and the non-incremental cache cleared) before every run
    so each one replays the same edit, and the min squeezes out
    allocator and scheduler jitter that would otherwise dwarf these
    millisecond-scale rows. *)
let incr_repeats = 3

let incr_measure ~dir ~name ~label ~edit =
  let source = Filename.concat dir (label ^ ".c") in
  write_file source (read_file (path name));
  let _ = Persist.analyze_cached ~cache_dir:dir ~incremental:true source in
  let entry_file =
    Persist.cache_file_incr ~cache_dir:dir ~source ~opts:Pointsto.Options.default
      ~entry:"main"
  in
  let entry_bytes = read_file entry_file in
  write_file source (edit (read_file source));
  let min_time ?(prepare = ignore) f =
    let best = ref infinity and last = ref None in
    for _ = 1 to incr_repeats do
      prepare ();
      let v, t = time f in
      last := Some v;
      if t < !best then best := t
    done;
    (Option.get !last, !best)
  in
  let cold, t_nocache = min_time (fun () -> Analysis.of_file source) in
  let cold_dir = Filename.concat dir (label ^ ".cold") in
  let clear_cold () =
    if Sys.file_exists cold_dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat cold_dir f))
        (Sys.readdir cold_dir)
  in
  let _, t_cold =
    min_time ~prepare:clear_cold (fun () ->
        Persist.analyze_cached ~cache_dir:cold_dir source)
  in
  let (incr, _), t_incr =
    min_time
      ~prepare:(fun () -> write_file entry_file entry_bytes)
      (fun () -> Persist.analyze_cached ~cache_dir:dir ~incremental:true source)
  in
  let m = incr.Analysis.metrics in
  {
    ir_name = name;
    ir_edit = (if String.equal name label then "comment" else "kernel");
    ir_funcs = List.length incr.Analysis.prog.Ir.funcs;
    ir_dirty = m.Pointsto.Metrics.incr_funcs_dirty;
    ir_reused = m.Pointsto.Metrics.incr_funcs_reused;
    ir_t_cold = t_cold;
    ir_t_nocache = t_nocache;
    ir_t_incr = t_incr;
    ir_ident = String.equal (result_digest cold) (result_digest incr);
  }

let comment_edit src = src ^ "\n/* bench trailing edit */\n"

let kernel_edit src =
  replace_once ~sub:"double kern_a_5(void) { int i;"
    ~by:"double kern_a_5(void) { int i; int bench_probe; bench_probe = 0;" src

(** One row per suite program (trailing-comment edit: every function
    hash survives, only the fp-touching slice re-runs), plus a real
    one-kernel edit of livc. *)
let incr_rows () =
  with_temp_dir (fun dir ->
      let rows =
        List.map
          (fun name -> incr_measure ~dir ~name ~label:name ~edit:comment_edit)
          (Paper_data.names @ [ "livc" ])
      in
      rows @ [ incr_measure ~dir ~name:"livc" ~label:"livc-kernel" ~edit:kernel_edit ])

let incremental () =
  section "Incremental Re-analysis: hash the functions, replay the clean subtrees";
  Fmt.pr "%-12s %8s %6s %6s %7s %9s %9s %9s %9s %6s@." "benchmark" "edit" "funcs" "dirty"
    "reused" "cold ms" "fixp ms" "incr ms" "speedup" "ident";
  Fmt.pr "%s@." hr;
  let rows = incr_rows () in
  List.iter
    (fun r ->
      Fmt.pr "%-12s %8s %6d %6d %7d %9.2f %9.2f %9.2f %8.1fx %6s@." r.ir_name r.ir_edit
        r.ir_funcs r.ir_dirty r.ir_reused r.ir_t_cold r.ir_t_nocache r.ir_t_incr
        (r.ir_t_cold /. r.ir_t_incr)
        (if r.ir_ident then "yes" else "NO"))
    rows;
  let t_cold = List.fold_left (fun a r -> a +. r.ir_t_cold) 0. rows in
  let t_nocache = List.fold_left (fun a r -> a +. r.ir_t_nocache) 0. rows in
  let t_incr = List.fold_left (fun a r -> a +. r.ir_t_incr) 0. rows in
  if List.exists (fun r -> not r.ir_ident) rows then
    failwith "incremental: a replayed run diverged from the cold fixpoint";
  Fmt.pr
    "@.suite totals: cold %.1f ms, incremental %.1f ms (%.1fx); bare fixpoint %.1f ms;@.\
     every row bit-identical@."
    t_cold t_incr (t_cold /. t_incr) t_nocache;
  Fmt.pr
    "(cold = the same edit through the non-incremental cache, i.e. full miss +@.\
     fixpoint + save — what --incremental replaces; fixp = bare Analysis.of_file@.\
     with no caching at all; incr = hash diff + rekey or dirty-slice re-run +@.\
     summary replay, including cache load and save; see docs/INCREMENTAL.md)@."

(* ------------------------------------------------------------------ *)
(* Serve: resident daemon throughput and latency                      *)
(* ------------------------------------------------------------------ *)

module Serve = Pointsto.Serve

(** Force the lazy reverse indexes concurrent query dispatch would race
    to build (same contract as [ptan serve]'s corpus load). *)
let prime_result (r : Analysis.result) =
  Hashtbl.iter (fun _ s -> Pts.prime s) r.Analysis.stmt_pts;
  Option.iter Pts.prime r.Analysis.entry_output;
  Ig.fold
    (fun () n ->
      Option.iter Pts.prime n.Ig.stored_input;
      Option.iter Pts.prime n.Ig.stored_output)
    () r.Analysis.graph

let serve_corpus names =
  List.map
    (fun name ->
      let r = result name in
      prime_result r;
      (name, r))
    names

let serve_handler corpus =
  let tbl = Hashtbl.create 32 in
  List.iter (fun (name, r) -> Hashtbl.replace tbl name r) corpus;
  {
    Serve.h_files = List.map fst corpus;
    Serve.h_answer =
      (fun ~file ~query ->
        match Hashtbl.find_opt tbl file with
        | None -> Serve.Ans_error ("unknown file '" ^ file ^ "'")
        | Some r -> (
            match Alias.Query.run r query with
            | Ok a ->
                if r.Analysis.degraded <> None then Serve.Ans_degraded a else Serve.Ans a
            | Error e -> Serve.Ans_error e));
    Serve.h_reload = None;
    Serve.h_paths = [];
  }

(** The daemon workload: every generated query of every corpus entry as
    a protocol line, paired with the reply a cold [Alias.Query.run]
    implies — the bit-identity oracle. *)
let serve_workload corpus =
  List.concat_map
    (fun (name, r) ->
      List.map
        (fun q ->
          let expect =
            match Alias.Query.run r q with Ok a -> "ok " ^ a | Error e -> "error " ^ e
          in
          ("q " ^ name ^ " " ^ q, expect))
        (gen_queries r))
    corpus

(** Run the daemon in-process over a pipe pair and push [lines] through
    it: a writer domain feeds the request pipe (so neither side can
    deadlock on a full pipe buffer) while this domain reads every reply.
    Returns the replies and the wall-clock milliseconds from first write
    to last reply. *)
let serve_round cfg handler lines =
  let req_r, req_w = Unix.pipe () in
  let rep_r, rep_w = Unix.pipe () in
  let daemon =
    Domain.spawn (fun () -> Serve.run cfg handler (Serve.Fds (req_r, rep_w)))
  in
  let payload = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
  let n = List.length lines in
  let t0 = Unix.gettimeofday () in
  let writer =
    Domain.spawn (fun () ->
        let len = String.length payload in
        let rec go off =
          if off < len then go (off + Unix.write_substring req_w payload off (len - off))
        in
        go 0;
        Unix.close req_w)
  in
  let ic = Unix.in_channel_of_descr rep_r in
  let replies = List.init n (fun _ -> input_line ic) in
  let t_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  Domain.join writer;
  let stats = Domain.join daemon in
  List.iter Unix.close [ req_r; rep_w; rep_r ];
  (replies, stats, t_ms)

(** Synchronous round trips (one request in flight), for the latency
    distribution the batched throughput run cannot show. *)
let serve_round_trips handler line n =
  let req_r, req_w = Unix.pipe () in
  let rep_r, rep_w = Unix.pipe () in
  let daemon =
    Domain.spawn (fun () ->
        Serve.run Serve.default_config handler (Serve.Fds (req_r, rep_w)))
  in
  let ic = Unix.in_channel_of_descr rep_r in
  let payload = line ^ "\n" in
  let times =
    List.init n (fun _ ->
        let t0 = Unix.gettimeofday () in
        let len = String.length payload in
        let rec go off =
          if off < len then go (off + Unix.write_substring req_w payload off (len - off))
        in
        go 0;
        ignore (input_line ic);
        (Unix.gettimeofday () -. t0) *. 1e3)
  in
  Unix.close req_w;
  ignore (Domain.join daemon);
  List.iter Unix.close [ req_r; rep_w; rep_r ];
  List.sort compare times

let percentile sorted p =
  match sorted with
  | [] -> 0.
  | _ ->
      let n = List.length sorted in
      List.nth sorted (min (n - 1) (p * n / 100))

let serve_bench () =
  section "Serve: resident daemon (in-process pipes, generated query workload)";
  let corpus = serve_corpus (Paper_data.names @ [ "livc" ]) in
  let handler = serve_handler corpus in
  let workload = serve_workload corpus in
  (* repeat the workload so the wall is long enough to time honestly *)
  let target = 40_000 in
  let reps = max 1 ((target + List.length workload - 1) / List.length workload) in
  let big = List.concat (List.init reps (fun _ -> workload)) in
  let lines = List.map fst big and expected = List.map snd big in
  (* direct dispatch first: the per-query cost floor the daemon's
     protocol and batching overhead is measured against *)
  let direct =
    List.concat
      (List.init reps (fun _ ->
           List.concat_map
             (fun (name, r) -> List.map (fun q -> (name, q)) (gen_queries r))
             corpus))
  in
  let (), t_direct =
    time (fun () ->
        List.iter (fun (file, query) -> ignore (handler.Serve.h_answer ~file ~query)) direct)
  in
  let jobs = min 4 (Domain.recommended_domain_count ()) in
  let cfg = { Serve.default_config with Serve.jobs; queue_max = 8192 } in
  let replies, stats, t_ms = serve_round cfg handler lines in
  List.iteri
    (fun i (got, want) ->
      if not (String.equal got want) then
        Fmt.failwith "serve: reply %d differs from cold query@.  line: %s@.  got:  %s@.  want: %s"
          i (List.nth lines i) got want)
    (List.combine replies expected);
  let n = List.length lines in
  let qps = float_of_int n /. t_ms *. 1e3 in
  Fmt.pr "corpus: %d files resident; workload: %d queries (%d distinct x %d)@."
    (List.length corpus) n (List.length workload) reps;
  Fmt.pr "direct dispatch (no daemon):   %d queries in %.1f ms = %.0f queries/s@."
    (List.length direct) t_direct
    (float_of_int (List.length direct) /. t_direct *. 1e3);
  Fmt.pr "batched throughput (-j %d): %d queries in %.1f ms = %.0f queries/s@." cfg.Serve.jobs
    n t_ms qps;
  Fmt.pr "daemon counters: %d requests, %d ok, %d error, %d shed, %d batches@."
    stats.Serve.s_requests stats.Serve.s_ok stats.Serve.s_errors stats.Serve.s_shed
    stats.Serve.s_batches;
  Fmt.pr "every reply bit-identical to a cold Alias.Query.run: yes@.";
  Fmt.pr "target: >= 100000 queries/s batched -- %s@."
    (if qps >= 1e5 then "met" else "MISSED");
  let times = serve_round_trips handler (List.hd lines) 2000 in
  Fmt.pr "synchronous round trip (1 in flight): p50 %.3f ms, p99 %.3f ms@."
    (percentile times 50) (percentile times 99)

(* ------------------------------------------------------------------ *)
(* Machine-readable trajectory: bench --json FILE                     *)
(* ------------------------------------------------------------------ *)

(** Daemon throughput over the stanford+livc workload, for the JSON
    report: (queries answered, queries per second). Replies are checked
    against cold dispatch exactly as in {!serve_bench}. *)
let serve_qps () =
  let corpus = serve_corpus [ "stanford"; "livc" ] in
  let handler = serve_handler corpus in
  let workload = serve_workload corpus in
  let lines = List.map fst workload and expected = List.map snd workload in
  let jobs = min 4 (Domain.recommended_domain_count ()) in
  let cfg = { Serve.default_config with Serve.jobs; queue_max = 8192 } in
  let replies, _, t_ms = serve_round cfg handler lines in
  List.iteri
    (fun i (got, want) ->
      if not (String.equal got want) then
        Fmt.failwith "serve_qps: reply %d differs from cold query (%s)" i (List.nth lines i))
    (List.combine replies expected);
  let n = List.length lines in
  (n, float_of_int n /. t_ms *. 1e3)

(** The BENCH_incremental.json report (schema in docs/OBSERVABILITY.md):
    per-program cold vs incremental wall-clock with dirty/reused
    counters and the bit-identity verdict, suite totals, and daemon
    throughput. Written with a trailing newline, keys in a fixed order,
    so CI diffs stay readable. *)
let incremental_json out =
  let rows = incr_rows () in
  let queries, qps = serve_qps () in
  let t_cold = List.fold_left (fun a r -> a +. r.ir_t_cold) 0. rows in
  let t_nocache = List.fold_left (fun a r -> a +. r.ir_t_nocache) 0. rows in
  let t_incr = List.fold_left (fun a r -> a +. r.ir_t_incr) 0. rows in
  let all_ident = List.for_all (fun r -> r.ir_ident) rows in
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "{\n";
  pr "  \"schema\": \"ptan-bench-incremental/2\",\n";
  pr "  \"programs\": [\n";
  List.iteri
    (fun i r ->
      pr
        "    {\"name\": %S, \"edit\": %S, \"funcs\": %d, \"dirty\": %d, \"reused\": %d, \
         \"t_cold_ms\": %.3f, \"t_fixpoint_ms\": %.3f, \"t_incr_ms\": %.3f, \
         \"identical\": %b}%s\n"
        r.ir_name r.ir_edit r.ir_funcs r.ir_dirty r.ir_reused r.ir_t_cold r.ir_t_nocache
        r.ir_t_incr r.ir_ident
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pr "  ],\n";
  pr "  \"totals\": {\"t_cold_ms\": %.3f, \"t_fixpoint_ms\": %.3f, \"t_incr_ms\": %.3f, \
      \"speedup\": %.2f, \"identical\": %b},\n"
    t_cold t_nocache t_incr (t_cold /. t_incr) all_ident;
  pr "  \"serve\": {\"queries\": %d, \"qps\": %.0f}\n" queries qps;
  pr "}\n";
  Out_channel.with_open_bin out (fun oc -> Out_channel.output_string oc (Buffer.contents buf));
  Fmt.pr "incremental: %d program rows, suite %.1f ms cold vs %.1f ms incremental (%.1fx), \
          serve %.0f queries/s -> %s@."
    (List.length rows) t_cold t_incr (t_cold /. t_incr) qps out;
  if not all_ident then failwith "incremental_json: a replayed run diverged from cold";
  if t_incr >= t_cold then
    failwith
      "incremental_json: incremental re-analysis did not beat the non-incremental cache"

type demand_row = {
  dm_name : string;
  dm_seed : string;  (** chosen query target: the cheapest-slice non-entry function *)
  dm_funcs : int;  (** defined functions in the program *)
  dm_slice : int;  (** functions the demand plan analyzes exactly *)
  dm_t_exh : float;  (** min-of-3 end-to-end exhaustive: parse + fixpoint, ms *)
  dm_t_demand : float;
      (** min-of-3 end-to-end demand: parse + Andersen prepare + plan +
          sliced fixpoint, ms *)
  dm_ident : bool;  (** seed rows bit-identical to the exhaustive run *)
}

let demand_repeats = 3

let demand_min_time f =
  let best = ref infinity and last = ref None in
  for _ = 1 to demand_repeats do
    let v, t = time f in
    last := Some v;
    if t < !best then best := t
  done;
  (Option.get !last, !best)

(** One demand-vs-exhaustive row. The seed stands in for "a query about
    one function": the defined non-entry function with the smallest
    slice (ties to program order) — the best case a single query can
    hit, which is exactly what the demand path exists for. Both sides
    are timed end to end from the source text (the demand side pays for
    parsing, the Andersen pre-pass and planning inside the measurement),
    min over {!demand_repeats} runs. *)
let demand_measure name =
  let source = path name in
  let p0 = Simple_ir.Simplify.of_file source in
  let d0 = Alias.Demand_driver.prepare p0 in
  let slice_of seed = Pointsto.Demand.slice_size (Alias.Demand_driver.plan_for d0 ~seed) in
  let seed, slice =
    match
      List.fold_left
        (fun acc fn ->
          let n = fn.Ir.fn_name in
          if String.equal n "main" then acc
          else
            let size = slice_of n in
            match acc with Some (_, best) when best <= size -> acc | _ -> Some (n, size))
        None p0.Ir.funcs
    with
    | Some (n, size) -> (n, size)
    | None -> ("main", slice_of "main")
  in
  let exh, t_exh =
    demand_min_time (fun () -> Analysis.analyze (Simple_ir.Simplify.of_file source))
  in
  let dem, t_demand =
    demand_min_time (fun () ->
        let d = Alias.Demand_driver.prepare (Simple_ir.Simplify.of_file source) in
        Alias.Demand_driver.analyze d ~seed)
  in
  let seed_fn = Option.get (Ir.find_func dem.Analysis.prog seed) in
  let ident = ref true in
  Ir.fold_func
    (fun () s ->
      if not (Pts.equal (Analysis.pts_at exh s.Ir.s_id) (Analysis.pts_at dem s.Ir.s_id))
      then ident := false)
    () seed_fn;
  {
    dm_name = name;
    dm_seed = seed;
    dm_funcs = List.length p0.Ir.funcs;
    dm_slice = slice;
    dm_t_exh = t_exh;
    dm_t_demand = t_demand;
    dm_ident = !ident;
  }

(** The BENCH_demand.json report (schema in docs/OBSERVABILITY.md):
    per-program exhaustive vs demand wall clock, slice fraction and the
    seed-row bit-identity verdict, plus suite totals. Bit-identity is a
    hard gate; so is winning on at least 14 of the 18 programs. *)
let demand_json out =
  let rows = List.map demand_measure (Paper_data.names @ [ "livc" ]) in
  let wins = List.length (List.filter (fun r -> r.dm_t_demand < r.dm_t_exh) rows) in
  let need = 14 in
  let all_ident = List.for_all (fun r -> r.dm_ident) rows in
  let t_exh = List.fold_left (fun a r -> a +. r.dm_t_exh) 0. rows in
  let t_demand = List.fold_left (fun a r -> a +. r.dm_t_demand) 0. rows in
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "{\n";
  pr "  \"schema\": \"ptan-bench-demand/1\",\n";
  pr "  \"programs\": [\n";
  List.iteri
    (fun i r ->
      pr
        "    {\"name\": %S, \"seed\": %S, \"funcs\": %d, \"slice\": %d, \
         \"slice_fraction\": %.3f, \"t_exhaustive_ms\": %.3f, \"t_demand_ms\": %.3f, \
         \"speedup\": %.2f, \"identical\": %b}%s\n"
        r.dm_name r.dm_seed r.dm_funcs r.dm_slice
        (float_of_int r.dm_slice /. float_of_int (max 1 r.dm_funcs))
        r.dm_t_exh r.dm_t_demand (r.dm_t_exh /. r.dm_t_demand) r.dm_ident
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pr "  ],\n";
  pr "  \"totals\": {\"programs\": %d, \"wins\": %d, \"t_exhaustive_ms\": %.3f, \
      \"t_demand_ms\": %.3f, \"speedup\": %.2f, \"identical\": %b}\n"
    (List.length rows) wins t_exh t_demand (t_exh /. t_demand) all_ident;
  pr "}\n";
  Out_channel.with_open_bin out (fun oc -> Out_channel.output_string oc (Buffer.contents buf));
  Fmt.pr
    "demand: %d program rows, %d/%d wins, suite %.1f ms exhaustive vs %.1f ms demand \
     (%.1fx) -> %s@."
    (List.length rows) wins (List.length rows) t_exh t_demand (t_exh /. t_demand) out;
  if not all_ident then
    failwith "demand_json: a demand run diverged from exhaustive on the seed rows";
  if wins < need then
    Fmt.failwith "demand_json: demand beat exhaustive cold on only %d/%d programs (need %d)"
      wins (List.length rows) need

(* ------------------------------------------------------------------ *)
(* Scale corpus: generated big programs (Gen / ptan gen)              *)
(* ------------------------------------------------------------------ *)

(** The fixed bench corpus: 3 sizes x 2 shapes plus a third 10k-line
    member, reproduced from knobs alone — [Gen.program] is
    byte-deterministic, so nothing is checked in (docs/CORPUS.md).
    "web" is function-pointer heavy and shallow (every fourth call
    site goes through a table); "deep" is a direct-call DAG seven
    layers deep with heavier struct traffic; "knot" is shallow like
    web but trades fn-ptr density for triple the recursion rate — a
    distinct way to burn fixpoint fuel, added so the
    degradation-at-scale gate sees three distinct 10k-line members
    (deeper/denser knot variants blow past 160 s exhaustive on the CI
    budget; depth 4 keeps the member in web's cost band). The top size
    keeps the acceptance floor: at least one program of 10k+ lines. *)
let corpus_spec =
  let web size =
    ("web", { Gen.default with Gen.seed = 11; size; depth = 4; fnptr_density = 30 })
  in
  let deep size =
    ("deep", { Gen.default with Gen.seed = 23; size; depth = 7; fnptr_density = 0; structs = 50 })
  in
  let knot size =
    ("knot", { Gen.default with Gen.seed = 37; size; depth = 4; fnptr_density = 15; recursion = 30 })
  in
  List.concat_map (fun size -> [ web size; deep size ]) [ 1_000; 3_000 ]
  @ [ web 10_000; deep 10_000; knot 10_000 ]

let corpus_name (shape, (k : Gen.knobs)) = Fmt.str "%s-%d" shape k.Gen.size

(** Statically indirect call sites of a program (calls through a
    function-pointer reference). *)
let indirect_sites p =
  Ir.fold_program
    (fun n s ->
      match s.Ir.s_desc with Ir.Scall (_, Ir.Cindirect _, _) -> n + 1 | _ -> n)
    0 p

(** Degraded-run soundness for corpus members: pair containment modulo
    the §4.1 symbolic names. The generated programs store addresses of
    locals into globals across deep call webs, so their final tables
    keep entry-relative symbolic locations (1_gp0, 1_p, ...) — and the
    full-precision and widened runs legitimately resolve those names
    differently (one may record [gp3 -> lv] where the other keeps
    [gp3 -> 1_gp3], both denoting "gp3 still holds what it pointed to
    at entry"). The strict syntactic check {!pairs_superset} cannot
    hold there, on either side. The gate that is actually meaningful:
    every full-run pair with concrete (non-symbolic) endpoints must be
    present in the degraded run — either verbatim, or absorbed by a
    degraded pair of the same statement and source whose target is a
    symbolic name (the entry summary that covers it). Pairs with a
    symbolic endpoint are entry-relative and carry no cross-mode
    meaning, so they are not compared. The 18 paper benchmarks never
    leave residual symbolic names in their tables, which is why the
    strict gate suffices for them. *)
let corpus_superset ~(full : Analysis.result) ~(degraded : Analysis.result) =
  let deg = Hashtbl.create 4096 and deg_sym = Hashtbl.create 1024 in
  let add_deg sid s =
    Pts.iter
      (fun src dst _ ->
        Hashtbl.replace deg (sid, Loc.id src, Loc.id dst) ();
        if Loc.sym_depth dst > 0 then Hashtbl.replace deg_sym (sid, Loc.id src) ())
      s
  in
  Hashtbl.iter add_deg degraded.Analysis.stmt_pts;
  (match degraded.Analysis.entry_output with Some o -> add_deg (-1) o | None -> ());
  let ok = ref true in
  let check sid s =
    Pts.iter
      (fun src dst _ ->
        if
          Loc.sym_depth src = 0
          && Loc.sym_depth dst = 0
          && (not (Hashtbl.mem deg (sid, Loc.id src, Loc.id dst)))
          && not (Hashtbl.mem deg_sym (sid, Loc.id src))
        then ok := false)
      s
  in
  Hashtbl.iter check full.Analysis.stmt_pts;
  (match full.Analysis.entry_output with Some o -> check (-1) o | None -> ());
  !ok

type corpus_row = {
  cr_name : string;
  cr_shape : string;
  cr_knobs : Gen.knobs;
  cr_lines : int;
  cr_funcs : int;
  cr_indirect : int;
  cr_t_gen : float;  (** generation ms (second render, after the regen identity check) *)
  cr_t_exh : float;  (** exhaustive context-sensitive analysis, ms *)
  cr_t_demand : float;  (** demand run for the cheapest-slice seed, end to end, ms *)
  cr_slice : int;
  cr_seed_fn : string;
  cr_demand_ident : bool;  (** demand seed-function rows equal the exhaustive run's *)
  cr_t_budget : float;  (** fuel-1 budgeted run (degrades to the widened rerun), ms *)
  cr_tripped : bool;
  cr_superset : bool;  (** degraded pairs contain the exhaustive pairs *)
  cr_exh : Analysis.result;
  cr_prog : Ir.program;
}

(** Generate and measure one corpus program. Single-shot timings, not
    min-of-N: the big members cost tens of seconds, and the trajectory
    tracking cares about the shape of the curve, not microseconds.
    Hard gates here: regeneration is byte-identical, the demand seed
    rows match exhaustive, and the degraded run is a pair superset. *)
let corpus_measure (shape, (k : Gen.knobs)) =
  let name = corpus_name (shape, k) in
  let text = Gen.program k in
  let regen, t_gen = time (fun () -> Gen.program k) in
  if not (String.equal text regen) then
    Fmt.failwith "corpus: %s regeneration is not byte-identical" name;
  let p = Simple_ir.Simplify.of_string ~file:(name ^ ".c") text in
  let lines = String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 text in
  if k.Gen.size >= 10_000 && lines < 10_000 then
    Fmt.failwith "corpus: %s is under the 10k-line acceptance floor (%d)" name lines;
  let exh, t_exh = time (fun () -> Analysis.analyze p) in
  (* the demand side: cheapest-slice non-entry seed, like demand_measure,
     but planned once on a shared driver — the corpus members are too
     big for per-function re-preparation *)
  let d0 = Alias.Demand_driver.prepare p in
  let slice_of seed = Pointsto.Demand.slice_size (Alias.Demand_driver.plan_for d0 ~seed) in
  let seed_fn, slice =
    match
      List.fold_left
        (fun acc fn ->
          let n = fn.Ir.fn_name in
          if String.equal n "main" then acc
          else
            let size = slice_of n in
            match acc with Some (_, best) when best <= size -> acc | _ -> Some (n, size))
        None p.Ir.funcs
    with
    | Some (n, size) -> (n, size)
    | None -> ("main", slice_of "main")
  in
  let dem, t_demand =
    time (fun () ->
        let d = Alias.Demand_driver.prepare p in
        Alias.Demand_driver.analyze d ~seed:seed_fn)
  in
  let demand_ident = ref true in
  Ir.fold_func
    (fun () s ->
      if not (Pts.equal (Analysis.pts_at exh s.Ir.s_id) (Analysis.pts_at dem s.Ir.s_id))
      then demand_ident := false)
    ()
    (Option.get (Ir.find_func dem.Analysis.prog seed_fn));
  if not !demand_ident then
    Fmt.failwith "corpus: %s demand run diverged from exhaustive on seed %s" name seed_fn;
  let deg, t_budget = time (fun () -> Analysis.analyze ~budget:degradation_budget p) in
  let tripped = deg.Analysis.degraded <> None in
  let superset = corpus_superset ~full:exh ~degraded:deg in
  if not superset then
    Fmt.failwith "corpus: %s degraded run lost points-to pairs (unsound widening)" name;
  (* degradation at scale: on the 10k-line members a fuel-tripped run
     must not cost more than the precise one — the checkpointed widened
     rerun (docs/ROBUSTNESS.md) seeds from the partial fixpoint, so
     degrading is a way to finish early, never a second full analysis *)
  if k.Gen.size >= 10_000 && tripped && t_budget > t_exh then
    Fmt.failwith
      "corpus: %s degraded run (%.1f ms) costs more than the precise one (%.1f ms)" name
      t_budget t_exh;
  {
    cr_name = name;
    cr_shape = shape;
    cr_knobs = k;
    cr_lines = lines;
    cr_funcs = List.length p.Ir.funcs;
    cr_indirect = indirect_sites p;
    cr_t_gen = t_gen;
    cr_t_exh = t_exh;
    cr_t_demand = t_demand;
    cr_slice = slice;
    cr_seed_fn = seed_fn;
    cr_demand_ident = !demand_ident;
    cr_t_budget = t_budget;
    cr_tripped = tripped;
    cr_superset = superset;
    cr_exh = exh;
    cr_prog = p;
  }

(** The exhaustive-vs-parallel leg over the whole corpus: one pool of
    [jobs] domains re-analyzes every member; every digest must equal
    the sequential run's. Returns (sequential ms, parallel ms). The
    sequential wall is the sum of the already-measured per-program
    exhaustive times — re-running it would double the most expensive
    leg for no information. *)
let corpus_parallel rows jobs =
  let parsed = List.map (fun r -> (r.cr_name, r.cr_prog)) rows in
  let par, t_par = suite_on_pool parsed jobs in
  List.iter2
    (fun r (_, rj) ->
      if not (String.equal (result_digest r.cr_exh) (result_digest rj)) then
        Fmt.failwith "corpus: %s differs between sequential and -j %d" r.cr_name jobs)
    rows par;
  let t_seq = List.fold_left (fun a r -> a +. r.cr_t_exh) 0. rows in
  (t_seq, t_par)

let corpus () =
  section "Scale Corpus (generated programs: exhaustive vs parallel vs demand vs budgeted)";
  let rows = List.map corpus_measure corpus_spec in
  Fmt.pr "%-11s %7s %6s %9s %10s %10s %7s %10s %6s %9s@." "program" "lines" "funcs"
    "indirect" "exh ms" "demand ms" "slice" "budget ms" "trip" "superset";
  Fmt.pr "%s@." hr;
  List.iter
    (fun r ->
      Fmt.pr "%-11s %7d %6d %9d %10.1f %10.1f %7d %10.1f %6s %9s@." r.cr_name r.cr_lines
        r.cr_funcs r.cr_indirect r.cr_t_exh r.cr_t_demand r.cr_slice r.cr_t_budget
        (if r.cr_tripped then "yes" else "-")
        (if r.cr_superset then "yes" else "NO"))
    rows;
  let jobs = Option.value ~default:4 (argv_jobs ()) in
  let t_seq, t_par = corpus_parallel rows jobs in
  Fmt.pr "@.parallel corpus: %.1f ms sequential vs %.1f ms on -j %d (%.2fx), bit-identical@."
    t_seq t_par jobs (t_seq /. t_par);
  Fmt.pr
    "(every member regenerates byte-identically from its seed; demand answers the@.\
     cheapest-slice seed bit-identically; fuel-1 degradation stays a pair superset)@."

(** The BENCH_corpus.json report (schema ptan-bench-corpus/2, documented
    in docs/BENCHMARKS.md): per-member line/function/indirect-site
    counts and the four walls (exhaustive, demand, budgeted, plus the
    corpus-wide parallel leg), with the regeneration, bit-identity,
    superset and degradation-at-scale ([degraded_le_precise] on every
    tripped 10k-line member) gates enforced while measuring. *)
let corpus_json out =
  let rows = List.map corpus_measure corpus_spec in
  let jobs = Option.value ~default:4 (argv_jobs ()) in
  let t_seq, t_par = corpus_parallel rows jobs in
  let total_lines = List.fold_left (fun a r -> a + r.cr_lines) 0 rows in
  let t_demand = List.fold_left (fun a r -> a +. r.cr_t_demand) 0. rows in
  let t_budget = List.fold_left (fun a r -> a +. r.cr_t_budget) 0. rows in
  let tripped = List.length (List.filter (fun r -> r.cr_tripped) rows) in
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "{\n";
  pr "  \"schema\": \"ptan-bench-corpus/2\",\n";
  pr "  \"programs\": [\n";
  List.iteri
    (fun i r ->
      let k = r.cr_knobs in
      pr
        "    {\"name\": %S, \"shape\": %S, \"seed\": %d, \"size\": %d, \"depth\": %d, \
         \"fnptr_density\": %d, \"lines\": %d, \"funcs\": %d, \"indirect_sites\": %d, \
         \"t_gen_ms\": %.3f, \"t_exhaustive_ms\": %.3f, \"t_demand_ms\": %.3f, \
         \"demand_seed\": %S, \"slice\": %d, \"t_budget_ms\": %.3f, \"tripped\": %b, \
         \"superset\": %b, \"identical_seed_rows\": %b, \"degraded_le_precise\": %b}%s\n"
        r.cr_name r.cr_shape k.Gen.seed k.Gen.size k.Gen.depth k.Gen.fnptr_density
        r.cr_lines r.cr_funcs r.cr_indirect r.cr_t_gen r.cr_t_exh r.cr_t_demand
        r.cr_seed_fn r.cr_slice r.cr_t_budget r.cr_tripped r.cr_superset r.cr_demand_ident
        (* the degradation-at-scale gate (vacuously true below 10k lines
           or when the budget never tripped, where the walls are noise) *)
        (k.Gen.size < 10_000 || (not r.cr_tripped) || r.cr_t_budget <= r.cr_t_exh)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pr "  ],\n";
  pr "  \"parallel\": {\"jobs\": %d, \"t_seq_ms\": %.3f, \"t_par_ms\": %.3f, \
      \"speedup\": %.2f, \"identical\": true},\n"
    jobs t_seq t_par (t_seq /. t_par);
  pr "  \"totals\": {\"programs\": %d, \"lines\": %d, \"t_exhaustive_ms\": %.3f, \
      \"t_demand_ms\": %.3f, \"t_budget_ms\": %.3f, \"tripped\": %d}\n"
    (List.length rows) total_lines t_seq t_demand t_budget tripped;
  pr "}\n";
  Out_channel.with_open_bin out (fun oc -> Out_channel.output_string oc (Buffer.contents buf));
  Fmt.pr
    "corpus: %d generated programs (%d lines), exhaustive %.1f ms sequential vs %.1f ms \
     on -j %d, %d tripped under fuel 1 -> %s@."
    (List.length rows) total_lines t_seq t_par jobs tripped out

(** [--json FILE] on the command line selects a machine-readable report
    instead of the full text harness, routed by file name: the corpus
    report when it mentions corpus, the demand report when it mentions
    demand, the incremental report otherwise (docs/BENCHMARKS.md). *)
let argv_json () =
  let rec go i =
    if i + 1 >= Array.length Sys.argv then None
    else if String.equal Sys.argv.(i) "--json" then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Bechamel timings                                                   *)
(* ------------------------------------------------------------------ *)

let timings () =
  section "Timings (Bechamel, monotonic clock, one Test.make per benchmark)";
  let open Bechamel in
  let open Toolkit in
  let tests =
    List.map
      (fun name ->
        let p = prog name in
        Test.make ~name (Staged.stage (fun () -> ignore (Analysis.analyze p))))
      (Paper_data.names @ [ "livc" ])
    @ [
        (let p = prog "stanford" in
         Test.make ~name:"baseline:andersen(stanford)"
           (Staged.stage (fun () -> ignore (Alias.Andersen.run p))));
        (let p = prog "stanford" in
         Test.make ~name:"baseline:steensgaard(stanford)"
           (Staged.stage (fun () -> ignore (Alias.Steensgaard.run p))));
      ]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) ~kde:None () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      List.iter
        (fun tst ->
          let raw = Benchmark.run cfg [ instance ] tst in
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Fmt.pr "%-32s %10.3f ms/run@." (Test.Elt.name tst) (t /. 1e6)
          | Some _ | None -> Fmt.pr "%-32s (no estimate)@." (Test.Elt.name tst))
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)
(* Representation micro-benchmarks                                    *)
(* ------------------------------------------------------------------ *)

(** Micro-benchmarks of the points-to set operations on the hot path of
    the fixed points, over the largest set observed while analyzing livc
    (the heaviest benchmark). *)
let rep_ops () =
  section "Representation Ops (Bechamel, largest points-to set of livc)";
  let r = result "livc" in
  let big =
    Hashtbl.fold (fun _ s acc -> if Pts.cardinal s > Pts.cardinal acc then s else acc)
      r.Analysis.stmt_pts Pts.empty
  in
  let pairs = Pts.to_list big in
  (* a structurally equal copy that shares nothing, so [equal]/[merge]
     cannot win by physical identity *)
  let copy = Pts.of_list pairs in
  (* a slightly divergent variant, for the non-subsuming merge path *)
  let variant = Pts.add Loc.Heap Loc.Str Pointsto.Pts.P copy in
  let some_src =
    match pairs with (s, _, _) :: _ -> s | [] -> Loc.Heap
  in
  Fmt.pr "set under test: %d pairs, %d locations@.@." (Pts.cardinal big)
    (Loc.Set.cardinal (Pts.all_locs big));
  let open Bechamel in
  let open Toolkit in
  let tests =
    [
      Test.make ~name:"merge (identical copy)"
        (Staged.stage (fun () -> ignore (Pts.merge big copy)));
      Test.make ~name:"merge (divergent)"
        (Staged.stage (fun () -> ignore (Pts.merge big variant)));
      Test.make ~name:"equal (identical copy)"
        (Staged.stage (fun () -> ignore (Pts.equal big copy)));
      Test.make ~name:"covered_by"
        (Staged.stage (fun () -> ignore (Pts.covered_by big variant)));
      Test.make ~name:"kill_src"
        (Staged.stage (fun () -> ignore (Pts.kill_src some_src big)));
      Test.make ~name:"remove_tgt NULL"
        (Staged.stage (fun () -> ignore (Pts.remove_tgt Loc.Null big)));
    ]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) ~kde:None () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      List.iter
        (fun tst ->
          let raw = Benchmark.run cfg [ instance ] tst in
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Fmt.pr "%-32s %10.1f ns/run@." (Test.Elt.name tst) t
          | Some _ | None -> Fmt.pr "%-32s (no estimate)@." (Test.Elt.name tst))
        (Test.elements test))
    tests

(** CI smoke mode: parse, analyze and sanity-check two benchmarks (the
    smallest and the heaviest) without the Bechamel sections. *)
let smoke () =
  Fmt.pr "smoke: analyzing stanford and livc@.";
  List.iter
    (fun name ->
      let r = result name in
      let g = Stats.general r in
      let m = r.Analysis.metrics in
      Fmt.pr "%-10s bodies %4d, pairs SS %4d SH %4d, merges %6d@." name
        m.Pointsto.Metrics.bodies g.Stats.stack_to_stack g.Stats.stack_to_heap
        m.Pointsto.Metrics.merges;
      if m.Pointsto.Metrics.bodies = 0 then failwith (name ^ ": no body passes recorded"))
    [ "stanford"; "livc" ];
  let dir = Filename.temp_file "ptan-smoke" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let source = path "stanford" in
      let cold, _ = Persist.analyze_cached ~cache_dir:dir source in
      let warm, hit = Persist.analyze_cached ~cache_dir:dir source in
      if not hit then failwith "persist: expected a warm cache hit";
      if not (String.equal (table345_rows cold) (table345_rows warm)) then
        failwith "persist: loaded result is not bit-identical";
      Fmt.pr "smoke: persisted stanford round trip ok@.");
  (* an edited source must replay bit-identically, not just cheaply *)
  with_temp_dir (fun dir ->
      List.iter
        (fun (label, edit) ->
          let row = incr_measure ~dir ~name:"livc" ~label ~edit in
          if not row.ir_ident then
            Fmt.failwith "smoke: incremental livc (%s edit) diverged from cold" row.ir_edit;
          if row.ir_reused = 0 then
            Fmt.failwith "smoke: incremental livc (%s edit) replayed nothing" row.ir_edit;
          Fmt.pr "smoke: incremental livc %s edit: %d dirty, %d replayed, bit-identical@."
            row.ir_edit row.ir_dirty row.ir_reused)
        [ ("livc", comment_edit); ("livc-kernel", kernel_edit) ]);
  (* drive the domain pool over the full suite and insist the parallel
     run reproduces the sequential one bit-for-bit *)
  let jobs = Option.value ~default:4 (argv_jobs ()) in
  let names = Paper_data.names @ [ "livc" ] in
  let parsed = List.map (fun name -> (name, prog name)) names in
  let seq, _ = suite_on_pool parsed 1 in
  let par, _ = suite_on_pool parsed jobs in
  List.iter2
    (fun (name, r1) (_, rj) ->
      if not (String.equal (result_digest r1) (result_digest rj)) then
        Fmt.failwith "smoke: %s differs between -j 1 and -j %d" name jobs)
    seq par;
  Fmt.pr "smoke: parallel suite (-j %d) identical to sequential on %d programs@." jobs
    (List.length names);
  (* budget exhaustion must degrade, not fail, and must stay sound *)
  let full = result "livc" in
  let deg = Analysis.analyze ~budget:degradation_budget (prog "livc") in
  (match deg.Analysis.degraded with
  | None -> failwith "smoke: livc did not trip under fuel 1"
  | Some d ->
      if not (pairs_superset ~full:(result_pairs full) ~degraded:(result_pairs deg)) then
        failwith "smoke: degraded livc tables lost points-to pairs";
      Fmt.pr "smoke: livc degraded soundly (%s)@."
        (Guard.reason_name d.Analysis.deg_trip.Guard.t_reason));
  (* the daemon must answer the generated workload bit-identically to
     cold queries, at daemon speed (lenient floor for loaded CI hosts) *)
  let corpus = serve_corpus [ "stanford"; "livc" ] in
  let handler = serve_handler corpus in
  let workload = serve_workload corpus in
  let lines = List.map fst workload and expected = List.map snd workload in
  let cfg = { Serve.default_config with Serve.jobs; queue_max = 8192 } in
  let replies, _, t_ms = serve_round cfg handler lines in
  List.iteri
    (fun i (got, want) ->
      if not (String.equal got want) then
        Fmt.failwith "smoke: serve reply %d differs from cold query (%s)" i
          (List.nth lines i))
    (List.combine replies expected);
  let qps = float_of_int (List.length lines) /. t_ms *. 1e3 in
  Fmt.pr "smoke: serve answered %d queries bit-identically at %.0f queries/s@."
    (List.length lines) qps;
  if qps < 2e4 then Fmt.failwith "smoke: serve throughput %.0f below the 20000 q/s floor" qps;
  Fmt.pr "smoke: ok@."

let () =
  match argv_json () with
  | Some out ->
      let base = String.lowercase_ascii (Filename.basename out) in
      let mentions sub =
        let n = String.length base and m = String.length sub in
        let rec go i = i + m <= n && (String.equal (String.sub base i m) sub || go (i + 1)) in
        go 0
      in
      if mentions "corpus" then corpus_json out
      else if mentions "demand" then demand_json out
      else incremental_json out
  | None ->
  if Array.exists (String.equal "--smoke") Sys.argv then smoke ()
  else if Array.exists (String.equal "--serve") Sys.argv then serve_bench ()
  else begin
    Fmt.pr "Reproduction harness: Emami, Ghiya & Hendren, PLDI 1994@.";
    Fmt.pr "\"Context-Sensitive Interprocedural Points-to Analysis in the Presence of@.";
    Fmt.pr "Function Pointers\" -- every table and figure of section 6.@.";
    table2 ();
    table3 ();
    table4 ();
    table5 ();
    table6 ();
    figure2 ();
    figures67 ();
    figures89 ();
    livc_study ();
    overall ();
    ablations ();
    extensions ();
    persistence ();
    incremental ();
    counters ();
    tracing ();
    degradation ();
    parallel_suite (match argv_jobs () with Some n -> [ n ] | None -> [ 2; 4; 8 ]);
    serve_bench ();
    corpus ();
    timings ();
    rep_ops ();
    Fmt.pr "@.Done. See EXPERIMENTS.md for the paper-vs-measured discussion.@."
  end
