(** The README "Quickstart" code snippet, compiled — if this file stops
    building, the README is out of date. Keep the code between the
    BEGIN/END markers identical to the snippet in README.md
    (scripts/check_cli_docs.sh guards the CLI half of the README; this
    executable guards the library half). *)

(* BEGIN README SNIPPET *)
let targets_of_p =
  let result =
    Pointsto.Analysis.of_string
      {|
      int g;
      void set(int **pp) { *pp = &g; }
      int main() { int *p; set(&p); return 0; }
      |}
  in
  (* p definitely points to g at exit of main *)
  match result.Pointsto.Analysis.entry_output with
  | Some s -> Pointsto.Pts.targets (Pointsto.Loc.Var ("p", Pointsto.Loc.Klocal)) s
  | None -> []
(* END README SNIPPET *)

let () =
  List.iter
    (fun (t, c) ->
      Fmt.pr "p points to %a (%s)@." Pointsto.Loc.pp t (Pointsto.Pts.cert_to_string c))
    targets_of_p
